"""Tests for the joint training loop on a tiny workload."""

import numpy as np
import pytest

from repro.config import fast_profile
from repro.core import build_mars_agent
from repro.rl import JointTrainer, SearchHistory, TrainerConfig
from repro.rl.trainer import SearchRecord
from repro.sim import ClusterSpec, PlacementEnv
from repro.workloads import build_vgg16


@pytest.fixture(scope="module")
def setup():
    graph = build_vgg16(scale=0.25, batch_size=4)
    cluster = ClusterSpec.default()
    env = PlacementEnv(graph, cluster)
    cfg = fast_profile(seed=0, iterations=4)
    agent = build_mars_agent(graph, cluster, cfg)
    return graph, cluster, env, cfg, agent


class TestJointTrainer:
    def test_history_records_per_iteration(self, setup):
        graph, cluster, _, cfg, _ = setup
        env = PlacementEnv(graph, cluster)
        agent = build_mars_agent(graph, cluster, cfg)
        history = JointTrainer(agent, env, cfg.trainer).train()
        assert len(history.records) == 4
        assert history.total_samples == 4 * cfg.trainer.samples_per_policy
        assert history.best_placement is not None
        assert history.best_runtime < float("inf")

    def test_sim_clock_monotone(self, setup):
        graph, cluster, _, cfg, _ = setup
        env = PlacementEnv(graph, cluster)
        agent = build_mars_agent(graph, cluster, cfg)
        history = JointTrainer(agent, env, cfg.trainer).train()
        clocks = [r.sim_clock for r in history.records]
        assert all(b > a for a, b in zip(clocks, clocks[1:]))

    def test_pretrain_clock_included(self, setup):
        graph, cluster, _, cfg, _ = setup
        env = PlacementEnv(graph, cluster)
        agent = build_mars_agent(graph, cluster, cfg)
        history = SearchHistory(pretrain_clock=123.0)
        history = JointTrainer(agent, env, cfg.trainer).train(history)
        assert history.sim_clock > 123.0

    def test_early_stop_samples(self, setup):
        graph, cluster, _, cfg, _ = setup
        from dataclasses import replace

        env = PlacementEnv(graph, cluster)
        agent = build_mars_agent(graph, cluster, cfg)
        tc = replace(cfg.trainer, iterations=50, early_stop_samples=20)
        history = JointTrainer(agent, env, tc).train()
        assert history.total_samples == 20

    def test_best_runtime_never_increases(self, setup):
        graph, cluster, _, cfg, _ = setup
        env = PlacementEnv(graph, cluster)
        agent = build_mars_agent(graph, cluster, cfg)
        history = JointTrainer(agent, env, cfg.trainer).train()
        bests = [r.best_runtime for r in history.records]
        assert all(b <= a + 1e-12 for a, b in zip(bests, bests[1:]))

    def test_unknown_algorithm_rejected(self, setup):
        graph, cluster, env, cfg, agent = setup
        from dataclasses import replace

        with pytest.raises(ValueError):
            JointTrainer(agent, env, replace(cfg.trainer, algorithm="sarsa"))

    def test_reinforce_algorithm_runs(self, setup):
        graph, cluster, _, cfg, _ = setup
        from dataclasses import replace

        env = PlacementEnv(graph, cluster)
        agent = build_mars_agent(graph, cluster, cfg)
        tc = replace(cfg.trainer, algorithm="reinforce", iterations=2)
        history = JointTrainer(agent, env, tc).train()
        assert len(history.records) == 2


class TestSearchHistory:
    def test_runtime_curve_filters_invalid(self):
        h = SearchHistory()
        h.records.append(
            SearchRecord(0, 10, [1.0, 100.0], [1.0], 1, 0, 1.0, -1.0, 5.0)
        )
        h.records.append(SearchRecord(1, 20, [2.0], [], 1, 0, 1.0, -1.0, 9.0))
        xs, ys = h.runtime_curve()
        assert xs.tolist() == [10]
        assert ys.tolist() == [1.0]

    def test_runtime_curve_max_filter(self):
        h = SearchHistory()
        h.records.append(
            SearchRecord(0, 10, [1.0, 30.0], [1.0, 30.0], 0, 0, 1.0, -1.0, 5.0)
        )
        xs, ys = h.runtime_curve(max_runtime=20.0)
        assert ys.tolist() == [1.0]

    def test_empty_history(self):
        h = SearchHistory()
        xs, ys = h.runtime_curve()
        assert len(xs) == 0 and h.total_samples == 0
