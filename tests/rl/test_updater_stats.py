"""Regression tests: all three updaters report unified UpdateStats health
fields (entropy, grad_norm, approx_kl) the watchdog can consume."""

import math

import numpy as np
import pytest

from repro.rl.cem import CEMConfig, CEMUpdater
from repro.rl.ppo import PPOConfig, PPOUpdater
from repro.rl.reinforce import ReinforceConfig, ReinforceUpdater
from tests.rl.test_ppo import BanditAgent, make_batch


def updaters():
    return [
        ("ppo", lambda agent: PPOUpdater(agent, PPOConfig(), seed=0)),
        ("reinforce", lambda agent: ReinforceUpdater(agent, ReinforceConfig())),
        ("cem", lambda agent: CEMUpdater(agent, CEMConfig())),
    ]


@pytest.mark.parametrize("name,build", updaters(), ids=lambda u: u if isinstance(u, str) else "")
def test_health_fields_finite_and_meaningful(name, build):
    agent = BanditAgent(4)
    updater = build(agent)
    rollout, adv = make_batch(agent, np.random.default_rng(0), lambda a: float(a))
    stats = updater.update(rollout, adv)
    assert math.isfinite(stats.policy_loss)
    assert math.isfinite(stats.approx_kl)
    assert stats.entropy > 0.0  # uniform init policy is maximally entropic
    assert stats.entropy <= math.log(4) + 1e-9
    assert stats.grad_norm >= 0.0 and math.isfinite(stats.grad_norm)
    assert stats.passes >= 1


@pytest.mark.parametrize(
    "build",
    [u[1] for u in updaters()],
    ids=[u[0] for u in updaters()],
)
def test_approx_kl_zero_on_first_fresh_batch(build):
    """The first update evaluates the exact sampling policy, so the
    pre-update drift mean(old_logp - new_logp) is 0 for every algorithm."""
    agent = BanditAgent(3)
    updater = build(agent)
    rollout, adv = make_batch(agent, np.random.default_rng(1), lambda a: float(a))
    stats = updater.update(rollout, adv)
    # PPO takes multiple passes, so its reported approx_kl is post-drift;
    # single-pass updaters evaluate strictly before stepping.
    if stats.passes == 1:
        assert stats.approx_kl == pytest.approx(0.0, abs=1e-9)


@pytest.mark.parametrize(
    "build",
    [u[1] for u in updaters()[1:]],  # reinforce, cem
    ids=["reinforce", "cem"],
)
def test_approx_kl_nonzero_on_stale_rollout(build):
    """Re-updating on a stale rollout shows real policy drift."""
    agent = BanditAgent(3)
    updater = build(agent)
    updater.optimizer.lr = 0.5
    rollout, adv = make_batch(agent, np.random.default_rng(2), lambda a: float(a))
    updater.update(rollout, adv)
    stats = updater.update(rollout, adv)  # same (now stale) rollout
    assert abs(stats.approx_kl) > 1e-6


@pytest.mark.parametrize(
    "build",
    [u[1] for u in updaters()[1:]],  # reinforce, cem
    ids=["reinforce", "cem"],
)
def test_policy_loss_excludes_entropy_bonus(build):
    """Doubling entropy_coef changes the total objective but must not leak
    into the reported policy_loss."""
    stats_by_coef = {}
    for coef in (0.0, 10.0):
        agent = BanditAgent(3)
        updater = build(agent)
        updater.config.entropy_coef = coef
        rollout, adv = make_batch(agent, np.random.default_rng(3), lambda a: float(a))
        stats_by_coef[coef] = updater.update(rollout, adv)
    assert stats_by_coef[0.0].policy_loss == pytest.approx(
        stats_by_coef[10.0].policy_loss, abs=1e-9
    )


def test_clip_fraction_zero_for_unclipped_algorithms():
    for build in (lambda a: ReinforceUpdater(a), lambda a: CEMUpdater(a)):
        agent = BanditAgent(3)
        rollout, adv = make_batch(agent, np.random.default_rng(4), lambda a: float(a))
        stats = build(agent).update(rollout, adv)
        assert stats.clip_fraction == 0.0
