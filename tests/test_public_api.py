"""Guards on the public API surface."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.nn",
            "repro.graph",
            "repro.workloads",
            "repro.sim",
            "repro.gnn",
            "repro.placers",
            "repro.rl",
            "repro.core",
            "repro.analysis",
            "repro.experiments",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__all__") and mod.__all__
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_readme_quickstart_objects_exist(self):
        """The symbols used in README's quickstart snippet must exist."""
        from repro import ClusterSpec, build_gnmt, fast_profile, optimize_placement  # noqa: F401

    def test_docstrings_on_public_symbols(self):
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__"
            and callable(getattr(repro, name))
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"missing docstrings: {undocumented}"
