"""Tests for the workload graph generators."""

import numpy as np
import pytest

from repro.workloads import (
    WORKLOADS,
    build_bert,
    build_gnmt,
    build_inception_v3,
    build_resnet50,
    build_seq2seq,
    build_transformer,
    build_vgg16,
    get_workload,
    list_workloads,
)

ALL_BUILDERS = [
    build_inception_v3,
    build_gnmt,
    build_bert,
    build_vgg16,
    build_resnet50,
    build_seq2seq,
    build_transformer,
]


@pytest.mark.parametrize("builder", ALL_BUILDERS)
class TestStructuralInvariants:
    def test_valid_dag_topologically_indexed(self, builder):
        g = builder(scale=0.3)
        g.validate()
        assert g.is_topologically_indexed()

    def test_connected_to_sink(self, builder):
        """Every op should reach the final train op (no dead subgraphs)."""
        import networkx as nx

        g = builder(scale=0.3)
        nxg = g.to_networkx()
        sink = g.num_nodes - 1
        reaches = nx.ancestors(nxg, sink) | {sink}
        assert len(reaches) == g.num_nodes

    def test_positive_costs(self, builder):
        g = builder(scale=0.3)
        assert g.total_flops() > 0
        assert g.total_param_bytes() > 0

    def test_scale_shrinks_op_count(self, builder):
        small = builder(scale=0.25)
        full = builder(scale=1.0)
        assert small.num_nodes < full.num_nodes

    def test_scale_validation(self, builder):
        with pytest.raises(ValueError):
            builder(scale=0.0)
        with pytest.raises(ValueError):
            builder(scale=1.5)

    def test_has_cpu_only_input_ops(self, builder):
        g = builder(scale=0.3)
        assert any(n.cpu_only for n in g.nodes)


class TestInception:
    def test_full_size(self):
        g = build_inception_v3()
        assert 250 <= g.num_nodes <= 400
        # ~24M parameters -> ~95 MB; generous band for the approximation.
        assert 60e6 <= g.total_param_bytes() <= 200e6

    def test_flops_magnitude(self):
        # ~5.7 GFLOPs/image, x2 for MAC counting tolerance.
        g = build_inception_v3(batch_size=1)
        assert 5e9 <= g.total_flops() <= 30e9

    def test_batch_scales_flops(self):
        assert build_inception_v3(batch_size=8).total_flops() > 4 * build_inception_v3().total_flops()


class TestGNMT:
    def test_memory_exceeds_single_gpu(self):
        """The paper's premise: batch-256 GNMT-4 needs >12 GB to train."""
        from repro.sim import MemoryModel

        g = build_gnmt()
        mm = MemoryModel()
        total = mm.op_bytes_vector(g).sum()
        assert total > 12 * 2**30

    def test_unroll_length(self):
        g = build_gnmt(seq_len=40, scale=0.5)
        cells = [n for n in g.nodes if n.op_type == "LSTMCell"]
        assert len(cells) == 8 * 20  # 4 enc + 4 dec layers, 20 steps

    def test_colocation_of_softmax(self):
        g = build_gnmt(scale=0.2)
        groups = g.colocation_groups()
        assert "softmax_w" in groups and len(groups["softmax_w"]) > 2


class TestBert:
    def test_memory_exceeds_single_gpu(self):
        from repro.sim import MemoryModel

        g = build_bert()
        total = MemoryModel().op_bytes_vector(g).sum()
        assert total > 12 * 2**30

    def test_layer_count_scaling(self):
        g = build_bert(scale=0.5)
        attn_ops = [n for n in g.nodes if n.name.endswith("attention/softmax")]
        assert len(attn_ops) == 6

    def test_min_two_layers(self):
        g = build_bert(scale=0.01)
        attn_ops = [n for n in g.nodes if n.name.endswith("attention/softmax")]
        assert len(attn_ops) == 2

    def test_embedding_tied_to_logits(self):
        g = build_bert(scale=0.2)
        emb = g.node("embeddings/lookup")
        logits = g.node("mlm/logits")
        assert emb.colocation_group == logits.colocation_group == "bert_embed"


class TestRegistry:
    def test_list_workloads(self):
        assert set(list_workloads()) == set(WORKLOADS)
        assert "inception_v3" in list_workloads()

    def test_get_workload_with_kwargs(self):
        g = get_workload("vgg16", scale=0.3, batch_size=8)
        assert "b8" in g.name

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("resnet9000")
