"""Structural pins for the GNMT graph (the most intricate generator)."""

import numpy as np
import pytest

from repro.workloads import build_gnmt


@pytest.fixture(scope="module")
def gnmt():
    return build_gnmt(scale=0.25)  # T = 10


class TestGNMTStructure:
    def test_recurrent_chain_within_layer(self, gnmt):
        """Cell t depends on cell t-1 of the same layer."""
        prev = gnmt.index_of("enc/l0/cell_t3")
        cur = gnmt.index_of("enc/l0/cell_t4")
        assert prev in gnmt.predecessors(cur)

    def test_layer_stacking(self, gnmt):
        below = gnmt.index_of("enc/l0/cell_t5")
        above = gnmt.index_of("enc/l1/cell_t5")
        assert below in gnmt.predecessors(above)

    def test_residuals_from_layer_two(self, gnmt):
        assert "enc/l2/residual_t0" in [n.name for n in gnmt.nodes]
        assert "enc/l1/residual_t0" not in [n.name for n in gnmt.nodes]

    def test_decoder_seeded_by_encoder_final_state(self, gnmt):
        dec0 = gnmt.index_of("dec/l0/cell_t0")
        pred_names = {gnmt.nodes[p].name for p in gnmt.predecessors(dec0)}
        assert any(name.startswith("enc/l3/") for name in pred_names)

    def test_attention_feeds_next_step_and_projection(self, gnmt):
        attn = gnmt.index_of("dec/attn_t3")
        succ_names = {gnmt.nodes[s].name for s in gnmt.successors(attn)}
        assert "dec/l0/cell_t4" in succ_names
        assert "proj/logits_t3" in succ_names

    def test_projection_colocated(self, gnmt):
        logits = [n for n in gnmt.nodes if n.name.startswith("proj/logits")]
        assert len(logits) == 10
        assert all(n.colocation_group == "softmax_w" for n in logits)

    def test_shared_weights_counted_once_per_layer(self, gnmt):
        """Unrolled cells share weights: only t=0 carries param bytes."""
        t0 = gnmt.node("enc/l0/cell_t0")
        t1 = gnmt.node("enc/l0/cell_t1")
        assert t0.param_bytes > 0
        assert t1.param_bytes == 0

    def test_loss_aggregates_all_steps(self, gnmt):
        total = gnmt.index_of("loss/sum")
        assert len(gnmt.predecessors(total)) == 10

    def test_flops_scale_with_batch(self):
        small = build_gnmt(scale=0.25, batch_size=64)
        big = build_gnmt(scale=0.25, batch_size=256)
        assert big.total_flops() == pytest.approx(4 * small.total_flops(), rel=0.05)
