"""Tests for the GraphBuilder helper and cost formulas."""

import pytest

from repro.workloads.builder import (
    GraphBuilder,
    conv2d_flops,
    elements,
    lstm_cell_flops,
    matmul_flops,
    tensor_bytes,
)


class TestCostFormulas:
    def test_elements(self):
        assert elements((2, 3, 4)) == 24
        assert elements(()) == 1

    def test_tensor_bytes_float32(self):
        assert tensor_bytes((10,)) == 40.0

    def test_matmul_flops(self):
        assert matmul_flops(2, 3, 4) == 48.0

    def test_conv2d_flops_formula(self):
        # B=1, 8x8 output, 3->16 channels, 3x3 kernel
        assert conv2d_flops(1, 8, 8, 3, 16, 3) == 2 * 64 * 3 * 16 * 9

    def test_lstm_cell_flops_dominated_by_gates(self):
        val = lstm_cell_flops(4, 8, 8)
        assert val > 2 * 4 * 16 * 32  # at least the fused matmul part


class TestGraphBuilder:
    def test_op_returns_name_for_chaining(self):
        b = GraphBuilder("t")
        x = b.op("a", "Input", shape=(2,))
        y = b.op("b", "ReLU", inputs=[x], shape=(2,))
        assert y == "b"
        g = b.build()
        assert g.num_edges == 1

    def test_default_act_bytes_from_shape(self):
        b = GraphBuilder("t")
        b.op("a", "MatMul", shape=(4, 4))
        assert b.graph.node("a").activation_bytes == 64.0

    def test_explicit_act_bytes(self):
        b = GraphBuilder("t")
        b.op("a", "MatMul", shape=(4, 4), act_bytes=1000.0)
        assert b.graph.node("a").activation_bytes == 1000.0

    def test_conv_block_emits_three_ops(self):
        b = GraphBuilder("t")
        x = b.op("input", "Input", shape=(1, 8, 8, 3))
        b.conv_block("c0", x, batch=1, out_hw=8, c_in=3, c_out=16, kernel=3)
        g = b.build()
        types = [n.op_type for n in g.nodes]
        assert types == ["Input", "Conv2D", "BatchNorm", "ReLU"]

    def test_conv_block_without_bn_relu(self):
        b = GraphBuilder("t")
        x = b.op("input", "Input", shape=(1, 8, 8, 3))
        b.conv_block("c0", x, 1, 8, 3, 16, 3, with_bn_relu=False)
        assert b.graph.num_nodes == 2

    def test_build_validates(self):
        b = GraphBuilder("t")
        b.op("a", "Input", shape=(2,))
        assert b.build().num_nodes == 1
