"""Shared test utilities."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor


def numerical_gradient(f, x0: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x0``."""
    grad = np.zeros_like(x0, dtype=float)
    flat_x = x0.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        xp = flat_x.copy()
        xm = flat_x.copy()
        xp[i] += eps
        xm[i] -= eps
        fp = float(f(Tensor(xp.reshape(x0.shape))).data)
        fm = float(f(Tensor(xm.reshape(x0.shape))).data)
        flat_g[i] = (fp - fm) / (2 * eps)
    return grad


def check_gradient(f, x0: np.ndarray, tol: float = 1e-5) -> float:
    """Assert autodiff and numerical gradients agree; returns max error."""
    x = Tensor(x0.copy(), requires_grad=True)
    out = f(x)
    assert out.size == 1, "gradcheck target must be scalar"
    out.backward()
    assert x.grad is not None, "no gradient reached the input"
    num = numerical_gradient(f, x0)
    err = float(np.abs(num - x.grad).max())
    assert err < tol, f"gradient mismatch: max err {err}"
    return err


def tiny_graph():
    """A 6-op diamond DAG used across unit tests."""
    from repro.graph import CompGraph, OpNode

    g = CompGraph("tiny")
    g.add_node(OpNode("in", "Input", (4, 8), cpu_only=True))
    g.add_node(OpNode("a", "MatMul", (4, 16), flops=1e6, param_bytes=512), inputs=["in"])
    g.add_node(OpNode("b", "ReLU", (4, 16), flops=64), inputs=["a"])
    g.add_node(OpNode("c", "MatMul", (4, 16), flops=1e6, param_bytes=1024), inputs=["a"])
    g.add_node(OpNode("d", "Concat", (4, 32)), inputs=["b", "c"])
    g.add_node(OpNode("loss", "CrossEntropy", (1,), flops=128), inputs=["d"])
    return g
