"""Contract tests for distributed actor–learner training.

The expensive end-to-end contracts from the issue live here:

* **budget parity** — a distributed run (workers=2, fixed seeds) must
  reach a final best makespan no worse than the single-process run on
  the same sample budget;
* **elastic robustness** — SIGKILLing a worker mid-run restarts it
  (``distrib.worker_restarts == 1``) and the run still completes its
  full budget; losing *every* worker halts gracefully instead of
  hanging.
"""

import multiprocessing
import os
import signal
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.config import fast_profile
from repro.core.search import build_agent, optimize_placement
from repro.distrib import replica_build_args, train_distributed
from repro.distrib.worker import WorkerSpec
from repro.rl.trainer import JointTrainer, SearchHistory
from repro.sim import ClusterSpec, PlacementEnv
from repro.telemetry import Telemetry
from tests.helpers import tiny_graph

CLUSTER = ClusterSpec.default()


class RecordingLogger:
    """In-memory event sink (the real loggers are file-backed or null)."""

    run_dir = None

    def __init__(self):
        self.records = []

    def emit(self, etype, **fields):
        event = {"type": etype, **fields}
        self.records.append(event)
        return event

    def flush(self):
        pass

    def close(self):
        pass


def _quick_cfg(seed=0, iterations=6, workers=2, **distrib_kw):
    cfg = fast_profile(seed=seed, iterations=iterations)
    return replace(
        cfg,
        pretrain=replace(cfg.pretrain, iterations=2),
        distrib=replace(cfg.distrib, workers=workers, **distrib_kw),
    )


def _no_orphans(timeout=5.0):
    """True once no live child processes remain (post-shutdown check)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


class TestReplicaBuildArgs:
    def test_mars_replica_skips_pretraining(self):
        cfg = _quick_cfg()
        kind, out = replica_build_args("mars", cfg)
        assert kind == "mars_no_pretrain"
        assert out is cfg  # no config surgery needed

    def test_study_replica_disables_pretrain_via_config(self):
        cfg = _quick_cfg()
        kind, out = replica_build_args("study:seq2seq", cfg)
        assert kind == "study:seq2seq"
        assert out.pretrain.enabled is False
        assert cfg.pretrain.enabled is True  # original untouched

    def test_other_kinds_pass_through(self):
        cfg = _quick_cfg()
        for kind in ("encoder_placer", "grouper_placer", "mars_no_pretrain"):
            assert replica_build_args(kind, cfg) == (kind, cfg)

    def test_replica_matches_learner_architecture(self):
        # A replica built from the mapped kind must accept the learner
        # agent's state dict verbatim — that is the broadcast contract.
        cfg = _quick_cfg()
        graph = tiny_graph()
        learner_agent, _ = build_agent("mars", graph, CLUSTER, cfg, None)
        kind, rep_cfg = replica_build_args("mars", cfg)
        replica, _ = build_agent(kind, graph, CLUSTER, rep_cfg, None)
        state = learner_agent.state_dict()
        replica.load_state_dict(state)
        for key, value in replica.state_dict().items():
            np.testing.assert_array_equal(value, state[key])


class TestWorkerSpec:
    def test_worker_env_is_always_serial(self):
        cfg = replace(
            _quick_cfg(),
            eval_batch=replace(_quick_cfg().eval_batch, mode="process", max_workers=4),
        )
        spec = WorkerSpec(
            worker_id=0,
            generation=0,
            num_workers=2,
            root_seed=0,
            agent_kind="mars",
            graph=tiny_graph(),
            cluster=CLUSTER,
            config=cfg,
            protocol=PlacementEnv(tiny_graph(), CLUSTER).protocol,
            samples_per_batch=4,
        )
        env_cfg = spec.worker_env_config()
        assert env_cfg.mode == "serial"
        # Everything else is inherited unchanged.
        assert env_cfg.cache_capacity == cfg.eval_batch.cache_capacity


class TestBudgetParity:
    def test_distributed_best_no_worse_than_single_process(self):
        """workers=2 with fixed seeds must match or beat the
        single-process search on the identical sample budget.

        The budget (30 policy iterations = 300 samples) is chosen so both
        searches plateau at the tiny graph's reachable optimum; below
        that, consumption-order nondeterminism lets either side win."""
        graph = tiny_graph()
        single = optimize_placement(
            graph,
            CLUSTER,
            "mars",
            _quick_cfg(iterations=30, workers=0),
            telemetry=Telemetry(name="sp"),
        )
        tel = Telemetry(name="dp")
        dist = optimize_placement(
            graph, CLUSTER, "mars", _quick_cfg(iterations=30, workers=2), telemetry=tel
        )
        # Same budget: one consumed batch == one policy iteration.
        assert len(dist.history.records) == len(single.history.records)
        assert dist.history.records[-1].samples_so_far == (
            single.history.records[-1].samples_so_far
        )
        assert dist.history.best_runtime <= single.history.best_runtime + 1e-12
        assert np.isfinite(dist.final_runtime)
        snap = tel.metrics.snapshot()
        assert snap["counters"]["distrib.batches"]["value"] == len(dist.history.records)
        assert snap["counters"]["distrib.weight_broadcasts"]["value"] >= 1
        assert snap["gauges"]["distrib.policy_version"]["value"] >= 1
        assert _no_orphans()


class TestElasticRobustness:
    def _trainer(self, cfg, graph):
        env = PlacementEnv(graph, CLUSTER)
        agent, pretrain_clock = build_agent("mars", graph, CLUSTER, cfg, None)
        trainer = JointTrainer(agent, env, cfg.trainer, health=cfg.health)
        return trainer, SearchHistory(pretrain_clock=pretrain_clock)

    def test_sigkilled_worker_is_restarted_and_run_completes(self):
        graph = tiny_graph()
        cfg = _quick_cfg(iterations=6, workers=2)
        trainer, history = self._trainer(cfg, graph)
        tel = Telemetry(name="kill", events=RecordingLogger())
        killed = []

        def kill_once(batch, supervisor):
            if not killed:
                handle = supervisor.handles[0]
                os.kill(handle.process.pid, signal.SIGKILL)
                killed.append(handle.process.pid)

        history = train_distributed(
            trainer, cfg, "mars", history=history, telemetry=tel, on_batch=kill_once
        )
        assert killed, "the kill hook never fired"
        assert history.halt_reason is None
        assert len(history.records) == cfg.trainer.iterations
        snap = tel.metrics.snapshot()
        assert snap["counters"]["distrib.worker_restarts"]["value"] == 1
        # The restarted slot announced itself.
        statuses = [
            (e["worker_id"], e["status"])
            for e in tel.events.records
            if e["type"] == "distrib_worker"
        ]
        assert (0, "started") in statuses and (1, "started") in statuses
        assert (0, "restarted") in statuses
        assert _no_orphans()

    def test_losing_every_worker_halts_instead_of_hanging(self):
        graph = tiny_graph()
        cfg = _quick_cfg(iterations=50, workers=1, max_worker_restarts=0)
        trainer, history = self._trainer(cfg, graph)
        tel = Telemetry(name="lost", events=RecordingLogger())

        def kill_always(batch, supervisor):
            for handle in supervisor.handles:
                if handle.alive:
                    os.kill(handle.process.pid, signal.SIGKILL)

        history = train_distributed(
            trainer, cfg, "mars", history=history, telemetry=tel, on_batch=kill_always
        )
        assert history.halt_reason == "distrib: all rollout workers lost"
        assert 1 <= len(history.records) < 50
        statuses = [
            e["status"]
            for e in tel.events.records
            if e["type"] == "distrib_worker"
        ]
        assert "lost" in statuses
        assert _no_orphans()

    def test_spawn_failure_falls_back_to_single_process(self, monkeypatch):
        from repro.distrib import learner as learner_mod

        graph = tiny_graph()
        cfg = _quick_cfg(iterations=3, workers=2)
        trainer, history = self._trainer(cfg, graph)

        def refuse(self, workers):
            raise OSError("fork refused")

        monkeypatch.setattr(learner_mod.Supervisor, "start_all", refuse)
        history = train_distributed(trainer, cfg, "mars", history=history)
        # The run still completes, on the ordinary in-process path.
        assert len(history.records) == 3
        assert history.halt_reason is None
        assert _no_orphans()
