"""Tests for the worker → learner wire types and the seed-spawning
helper that gives every worker (and every restart generation) its own
independent random stream."""

import pickle

import numpy as np
import pytest

from repro.distrib.messages import SampleBatch
from repro.rl.policy import AgentRollout
from repro.sim.measurement import MeasurementResult
from repro.utils.rng import spawn_seeds


def _rollout(b=4, ops=6, seed=0):
    rng = np.random.default_rng(seed)
    return AgentRollout(
        placements=rng.integers(0, 4, size=(b, ops)),
        internal={"actions": rng.integers(0, 4, size=(b, ops))},
        old_logp=rng.normal(size=(b, ops)),
    )


def _results(b=4, seed=1):
    rng = np.random.default_rng(seed)
    return [
        MeasurementResult(
            per_step_time=float(rng.uniform(0.1, 1.0)),
            valid=bool(i % 3),
            truncated=bool(i == 2),
            steps_run=int(rng.integers(1, 100)),
            wall_clock=float(rng.uniform(0.0, 5.0)),
        )
        for i in range(b)
    ]


def _batch(b=4):
    return SampleBatch.build(
        worker_id=1,
        generation=2,
        seq=3,
        policy_version=4,
        rollout=_rollout(b),
        results=_results(b),
        env_wall_delta=12.5,
        duration_s=0.25,
        start_unix=1.7e9,
    )


class TestSampleBatch:
    def test_build_round_trips_rollout_and_results(self):
        rollout, results = _rollout(), _results()
        batch = _batch()
        assert batch.batch_size == 4
        back = batch.rollout()
        np.testing.assert_array_equal(back.placements, rollout.placements)
        np.testing.assert_array_equal(back.internal["actions"], rollout.internal["actions"])
        np.testing.assert_array_equal(back.old_logp, rollout.old_logp)
        assert batch.results() == results

    def test_provenance_and_accounting_preserved(self):
        batch = _batch()
        assert (batch.worker_id, batch.generation, batch.seq) == (1, 2, 3)
        assert batch.policy_version == 4
        assert batch.env_wall_delta == 12.5
        assert batch.duration_s == 0.25
        assert batch.start_unix == 1.7e9

    def test_mismatched_result_count_rejected(self):
        with pytest.raises(ValueError, match="4 samples, got 3"):
            SampleBatch.build(
                worker_id=0,
                generation=0,
                seq=0,
                policy_version=1,
                rollout=_rollout(4),
                results=_results(3),
                env_wall_delta=0.0,
                duration_s=0.0,
                start_unix=0.0,
            )

    def test_survives_queue_pickle_round_trip(self):
        # The mp.Queue transport is exactly a pickle round-trip; the
        # message must come back equal without importing agent classes.
        batch = _batch()
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.results() == batch.results()
        np.testing.assert_array_equal(clone.placements, batch.placements)
        np.testing.assert_array_equal(clone.old_logp, batch.old_logp)
        assert clone.policy_version == batch.policy_version


class TestSpawnSeeds:
    def test_deterministic_for_same_inputs(self):
        a = spawn_seeds(7, 4)
        b = spawn_seeds(7, 4)
        for sa, sb in zip(a, b):
            assert np.random.default_rng(sa).integers(1 << 30) == np.random.default_rng(
                sb
            ).integers(1 << 30)

    def test_workers_get_distinct_streams(self):
        seqs = spawn_seeds(7, 8)
        draws = {int(np.random.default_rng(s).integers(1 << 62)) for s in seqs}
        assert len(draws) == 8

    def test_generation_key_gives_fresh_streams(self):
        # A restarted worker (bumped generation) must not replay the
        # stream its dead predecessor half-consumed.
        g0 = spawn_seeds(7, 2, key=(0,))
        g1 = spawn_seeds(7, 2, key=(1,))
        for s0, s1 in zip(g0, g1):
            assert np.random.default_rng(s0).integers(1 << 62) != np.random.default_rng(
                s1
            ).integers(1 << 62)

    def test_distinct_root_seeds_do_not_collide(self):
        # The failure mode of seed+i arithmetic: worker 1 of seed 7 must
        # differ from worker 0 of seed 8.
        a = np.random.default_rng(spawn_seeds(7, 2)[1]).integers(1 << 62)
        b = np.random.default_rng(spawn_seeds(8, 2)[0]).integers(1 << 62)
        assert a != b

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, 0)
