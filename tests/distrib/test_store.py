"""Tests for the versioned variable store (``repro.distrib.store``)."""

import os
import pickle

import numpy as np
import pytest

from repro.distrib.store import _KEEP_BEHIND, _SNAP_PREFIX, VariableStore


def _state(v: float):
    return {"w": np.full((3, 2), v), "b": np.array([v])}


def _assert_state_equal(a, b):
    assert sorted(a) == sorted(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key])


class TestPublishFetch:
    def test_fresh_store_has_version_zero_and_nothing_to_fetch(self, tmp_path):
        store = VariableStore(str(tmp_path))
        assert store.version == 0
        assert store.fetch() is None

    def test_publish_bumps_version_and_fetch_round_trips(self, tmp_path):
        store = VariableStore(str(tmp_path))
        assert store.publish(_state(1.0)) == 1
        assert store.version == 1
        version, state = store.fetch()
        assert version == 1
        _assert_state_equal(state, _state(1.0))

    def test_fetch_newer_than_is_a_no_op_when_current(self, tmp_path):
        store = VariableStore(str(tmp_path))
        store.publish(_state(1.0))
        assert store.fetch(newer_than=1) is None
        store.publish(_state(2.0))
        version, state = store.fetch(newer_than=1)
        assert version == 2
        _assert_state_equal(state, _state(2.0))

    def test_fetch_always_returns_the_head(self, tmp_path):
        store = VariableStore(str(tmp_path))
        for i in range(1, 6):
            store.publish(_state(float(i)))
        version, state = store.fetch()
        assert version == 5
        _assert_state_equal(state, _state(5.0))

    def test_reader_in_another_handle_sees_the_same_files(self, tmp_path):
        # Workers get the store object via fork; the snapshot files are
        # the actual transport. A second handle over the same directory
        # must read what the first wrote.
        writer = VariableStore(str(tmp_path))
        writer.publish(_state(7.0))
        path = writer._path(1)
        with open(path, "rb") as fh:
            _assert_state_equal(pickle.load(fh), _state(7.0))


class TestPruning:
    def _versions_on_disk(self, directory):
        out = []
        for name in os.listdir(directory):
            if name.startswith(_SNAP_PREFIX) and name.endswith(".pkl"):
                out.append(int(name[len(_SNAP_PREFIX) : -len(".pkl")]))
        return sorted(out)

    def test_old_snapshots_are_pruned_behind_the_head(self, tmp_path):
        store = VariableStore(str(tmp_path))
        for i in range(1, 8):
            store.publish(_state(float(i)))
        versions = self._versions_on_disk(str(tmp_path))
        assert versions == [8 - _KEEP_BEHIND, 7]
        # The head (and the one behind it) stay loadable.
        for v in versions:
            assert os.path.exists(store._path(v))

    def test_fetch_retries_when_its_file_was_pruned_under_it(self, tmp_path):
        # A reader that observes version v, then sleeps through enough
        # publishes for weights-v to be pruned, must retry against the
        # new head instead of raising FileNotFoundError.
        class StaleVersionStore(VariableStore):
            stale = None

            @property
            def version(self):
                if self.stale is not None:
                    v, self.stale = self.stale, None
                    return v
                return VariableStore.version.fget(self)

        store = StaleVersionStore(str(tmp_path))
        for i in range(1, 6):
            store.publish(_state(float(i)))
        assert not os.path.exists(store._path(1))
        store.stale = 1  # next version read observes the pruned head
        version, state = store.fetch(newer_than=0)
        assert version == 5
        _assert_state_equal(state, _state(5.0))

    def test_publish_failure_leaves_no_temp_files(self, tmp_path):
        store = VariableStore(str(tmp_path))

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            store.publish({"w": Unpicklable()})
        assert store.version == 0
        leftovers = [n for n in os.listdir(str(tmp_path)) if n.endswith(".tmp")]
        assert leftovers == []
        # The store still works after the failed publish.
        assert store.publish(_state(1.0)) == 1
