"""Trace/span layer: activation gating, propagation, and export."""

import threading

from repro.analysis.trace import events_to_chrome_trace
from repro.telemetry import Telemetry, read_events, start_run
from repro.telemetry.events import validate_event
from repro.telemetry.tracing import (
    NOOP_SPAN,
    SpanContext,
    current_span,
    new_trace_id,
    record_span,
    span,
)


def file_backed(tmp_path, name="trace-test"):
    return start_run(name, str(tmp_path))


def spans_of(run_dir):
    return list(read_events(run_dir, types=("span",)))


class TestActivationGate:
    def test_memory_only_session_yields_noop(self):
        sp = span("x", telemetry=Telemetry(), new_trace=True)
        assert sp is NOOP_SPAN
        assert sp.context is None
        with sp:  # no-op context manager works and records nothing
            assert current_span() is None

    def test_no_trace_to_join_yields_noop(self, tmp_path):
        tel = file_backed(tmp_path)
        try:
            assert span("x", telemetry=tel) is NOOP_SPAN
        finally:
            tel.close()
        assert spans_of(tel.run_dir) == []

    def test_sample_events_off_yields_noop(self, tmp_path):
        tel = start_run("no-samples", str(tmp_path), sample_events=False)
        try:
            assert span("x", telemetry=tel, new_trace=True) is NOOP_SPAN
            parent = SpanContext(new_trace_id(), new_trace_id())
            assert record_span("y", 0.1, telemetry=tel, parent=parent) is None
        finally:
            tel.close()
        assert spans_of(tel.run_dir) == []


class TestAmbientNesting:
    def test_root_child_tree_and_schema(self, tmp_path):
        tel = file_backed(tmp_path)
        try:
            with span("root", telemetry=tel, new_trace=True) as root:
                assert current_span().span_id == root.span_id
                with span("child", telemetry=tel, extra_field="kept") as child:
                    assert current_span().span_id == child.span_id
                assert current_span().span_id == root.span_id
            assert current_span() is None
        finally:
            tel.close()
        events = spans_of(tel.run_dir)
        assert [e["name"] for e in events] == ["child", "root"]
        for event in events:
            assert validate_event(event) == [], event
            assert event["status"] == "ok"
            assert event["start_unix"] > 0
            assert event["duration_s"] >= 0
        child_ev, root_ev = events
        assert root_ev["parent_id"] == ""
        assert child_ev["parent_id"] == root_ev["span_id"]
        assert child_ev["trace_id"] == root_ev["trace_id"]
        assert child_ev["extra_field"] == "kept"

    def test_exception_marks_span_error(self, tmp_path):
        tel = file_backed(tmp_path)
        try:
            try:
                with span("boom", telemetry=tel, new_trace=True):
                    raise ValueError("nope")
            except ValueError:
                pass
        finally:
            tel.close()
        (event,) = spans_of(tel.run_dir)
        assert event["status"] == "error"
        assert current_span() is None  # stack unwound despite the raise


class TestExplicitPropagation:
    def test_context_round_trips_across_threads(self, tmp_path):
        tel = file_backed(tmp_path)
        try:
            with span("root", telemetry=tel, new_trace=True) as root:
                wire = root.context.to_dict()  # what crosses the queue

            def worker():
                parent = SpanContext.from_dict(wire)
                with span("worker", telemetry=tel, parent=parent):
                    pass

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        finally:
            tel.close()
        events = {e["name"]: e for e in spans_of(tel.run_dir)}
        assert events["worker"]["trace_id"] == events["root"]["trace_id"]
        assert events["worker"]["parent_id"] == events["root"]["span_id"]

    def test_from_dict_rejects_malformed(self):
        assert SpanContext.from_dict(None) is None
        assert SpanContext.from_dict("not-a-dict") is None
        assert SpanContext.from_dict({}) is None
        assert SpanContext.from_dict({"trace_id": 7, "span_id": "s"}) is None
        assert SpanContext.from_dict({"trace_id": "", "span_id": "s"}) is None
        ctx = SpanContext.from_dict({"trace_id": "t", "span_id": "s"})
        assert (ctx.trace_id, ctx.span_id) == ("t", "s")

    def test_record_span_after_the_fact(self, tmp_path):
        tel = file_backed(tmp_path)
        try:
            parent = SpanContext("trace-1", "span-1")
            span_id = record_span(
                "pool.job", 0.25, telemetry=tel, parent=parent,
                start_unix=123.5, status="ok", pool=True,
            )
            assert span_id
            assert record_span("orphan", 0.1, telemetry=tel, parent=None) is None
        finally:
            tel.close()
        (event,) = spans_of(tel.run_dir)
        assert event["span_id"] == span_id
        assert event["trace_id"] == "trace-1"
        assert event["parent_id"] == "span-1"
        assert event["start_unix"] == 123.5
        assert event["duration_s"] == 0.25
        assert event["pool"] is True

    def test_ids_are_unique(self):
        ids = {new_trace_id() for _ in range(1000)}
        assert len(ids) == 1000


class TestPerfettoRoundTrip:
    def test_spans_become_wall_clock_slices(self, tmp_path):
        tel = file_backed(tmp_path)
        try:
            with span("root", telemetry=tel, new_trace=True):
                with span("child", telemetry=tel):
                    pass
        finally:
            tel.close()
        doc = events_to_chrome_trace(read_events(tel.run_dir))
        slices = [
            e for e in doc["traceEvents"]
            if e.get("ph") == "X" and "trace_id" in e.get("args", {})
        ]
        assert {s["name"] for s in slices} == {"root", "child"}
        t0 = min(s["ts"] for s in slices)
        assert t0 == 0.0  # normalized to the earliest span start
        assert all(s["dur"] > 0 for s in slices)
        assert len({s["args"]["trace_id"] for s in slices}) == 1
        metas = [
            e for e in doc["traceEvents"]
            if e.get("name") == "thread_name" and e["pid"] == slices[0]["pid"]
        ]
        assert len(metas) == 1  # one thread row per trace
