"""Tests for the report CLI: --health, --attribution and --diff modes."""

import numpy as np
import pytest

from repro.sim import ClusterSpec, PlacementEnv
from repro.telemetry import HealthConfig, HealthWatchdog, start_run
from repro.telemetry.report import (
    diff_runs,
    load_run,
    main,
    render_diff,
    render_health_section,
    render_report,
    summarize_run,
)
from tests.helpers import tiny_graph


@pytest.fixture()
def sick_run(tmp_path):
    """A run directory with alerts, an attribution event, and metrics."""
    tel = start_run("sick", str(tmp_path), manifest={"workload": "tiny"})
    g = tiny_graph()
    env = PlacementEnv(g, ClusterSpec.default(), telemetry=tel)
    env.record_attribution(np.arange(g.num_nodes) % 2, iteration=1)
    env.record_attribution(np.arange(g.num_nodes) % 3, iteration=2)
    dog = HealthWatchdog(HealthConfig(kl_threshold=0.1, cooldown=0), telemetry=tel)

    class Stats:
        policy_loss = 0.1
        entropy = 1.0
        grad_norm = 0.2
        approx_kl = 0.9

    dog.observe_update(3, Stats())
    tel.counter("trainer.iterations").inc(4)
    tel.close()
    return tel.run_dir


@pytest.fixture()
def healthy_run(tmp_path):
    tel = start_run("healthy", str(tmp_path), manifest={"workload": "tiny"})
    tel.counter("trainer.iterations").inc(6)
    tel.close()
    return tel.run_dir


class TestHealthSection:
    def test_alert_timeline_rendered(self, sick_run):
        text = render_health_section(load_run(sick_run))
        assert "kl_blowup" in text
        assert "1 alert(s)" in text

    def test_quiet_run_fallback(self, healthy_run):
        text = render_health_section(load_run(healthy_run))
        assert "no alerts" in text

    def test_halted_banner(self, tmp_path):
        tel = start_run("halted", str(tmp_path))
        tel.update_manifest(halted=True, halt_reason="nan_guard: boom")
        tel.close()
        text = render_health_section(load_run(tel.run_dir))
        assert "HALTED" in text and "nan_guard: boom" in text


class TestAttributionSection:
    def test_latest_event_rendered(self, sick_run):
        text = render_report(sick_run, attribution=True)
        assert "--- attribution ---" in text
        assert "critical path" in text
        assert "2 attribution snapshots" in text

    def test_fallback_without_events(self, healthy_run):
        text = render_report(healthy_run, attribution=True)
        assert "no attribution events" in text


class TestSummaryFields:
    def test_summary_counts_alerts(self, sick_run):
        summary = summarize_run(load_run(sick_run))
        assert summary["alerts"] == 1
        assert summary["alerts_by_detector"] == {"kl_blowup": 1}
        assert summary["halted"] is False

    def test_attribution_events_validate(self, sick_run):
        assert summarize_run(load_run(sick_run))["schema_errors"] == []


class TestDiff:
    def test_diff_structure(self, sick_run, healthy_run):
        diff = diff_runs(healthy_run, sick_run)
        assert diff["alerts"]["delta"] == 1
        iters = diff["metrics"]["trainer.iterations"]
        assert iters["a_final"] == 6 and iters["b_final"] == 4
        assert iters["delta_final"] == -2

    def test_render_diff(self, sick_run, healthy_run):
        text = render_diff(diff_runs(healthy_run, sick_run))
        assert "run diff" in text
        assert "trainer.iterations" in text
        assert "alerts: 0 -> 1" in text


class TestCLI:
    def test_health_and_attribution_flags(self, sick_run, capsys):
        assert main([sick_run, "--health", "--attribution"]) == 0
        out = capsys.readouterr().out
        assert "--- health ---" in out and "--- attribution ---" in out

    def test_diff_mode(self, sick_run, healthy_run, capsys):
        assert main(["--diff", healthy_run, sick_run]) == 0
        assert "run diff" in capsys.readouterr().out

    def test_diff_json(self, sick_run, healthy_run, capsys):
        import json

        assert main(["--diff", healthy_run, sick_run, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["alerts"]["delta"] == 1

    def test_missing_run_dir_is_an_error(self, capsys):
        assert main([]) == 2
        assert "run_dir" in capsys.readouterr().err

    def test_nonexistent_diff_dir_is_an_error(self, tmp_path):
        assert main(["--diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 2
