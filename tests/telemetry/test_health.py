"""Tests for the streaming training-health watchdog."""

import json
import math
import os
from dataclasses import replace

import pytest

from repro.config import fast_profile
from repro.core import build_mars_agent
from repro.rl import JointTrainer
from repro.rl.ppo import UpdateStats
from repro.sim import ClusterSpec, PlacementEnv
from repro.telemetry import (
    HealthConfig,
    HealthWatchdog,
    Telemetry,
    read_events,
    start_run,
    use_telemetry,
    validate_event,
)
from repro.workloads import build_vgg16


def healthy_stats(**overrides) -> UpdateStats:
    base = dict(
        policy_loss=0.1, entropy=1.2, clip_fraction=0.05,
        approx_kl=0.01, grad_norm=0.5, passes=1,
    )
    base.update(overrides)
    return UpdateStats(**base)


class TestHealthConfig:
    def test_bad_action_rejected(self):
        with pytest.raises(ValueError):
            HealthConfig(action="explode")

    def test_actions_accepted(self):
        for action in ("log", "warn", "halt"):
            assert HealthConfig(action=action).action == action


class TestDetectors:
    def test_healthy_stream_stays_quiet(self):
        dog = HealthWatchdog(HealthConfig(), telemetry=Telemetry())
        for i in range(30):
            assert dog.observe_update(i, healthy_stats()) == []
            assert dog.observe_iteration(
                i, best_runtime=1.0 / (i + 1), n_invalid=0, n_samples=10
            ) == []
        assert dog.alerts == []
        assert not dog.halted

    @pytest.mark.parametrize("field", ["policy_loss", "grad_norm", "entropy", "approx_kl"])
    def test_nan_guard_fires_on_any_field(self, field):
        dog = HealthWatchdog(HealthConfig(), telemetry=Telemetry())
        fired = dog.observe_update(3, healthy_stats(**{field: float("nan")}))
        assert [a.detector for a in fired] == ["nan_guard"]
        assert fired[0].iteration == 3
        assert field in fired[0].message

    def test_nan_guard_fires_on_inf(self):
        dog = HealthWatchdog(HealthConfig(), telemetry=Telemetry())
        fired = dog.observe_update(0, healthy_stats(grad_norm=float("inf")))
        assert [a.detector for a in fired] == ["nan_guard"]

    def test_entropy_collapse_needs_full_window(self):
        cfg = HealthConfig(window=3, entropy_floor=0.5)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        assert dog.observe_update(0, healthy_stats(entropy=0.01)) == []
        assert dog.observe_update(1, healthy_stats(entropy=0.01)) == []
        fired = dog.observe_update(2, healthy_stats(entropy=0.01))
        assert [a.detector for a in fired] == ["entropy_collapse"]
        assert fired[0].value == pytest.approx(0.01)
        assert fired[0].window == 3

    def test_entropy_collapse_not_triggered_by_healthy_mean(self):
        cfg = HealthConfig(window=2, entropy_floor=0.5)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        for i in range(10):
            assert dog.observe_update(i, healthy_stats(entropy=1.0)) == []

    def test_kl_blowup_on_either_sign(self):
        cfg = HealthConfig(kl_threshold=0.5, cooldown=0)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        assert [a.detector for a in dog.observe_update(0, healthy_stats(approx_kl=0.7))] == [
            "kl_blowup"
        ]
        assert [a.detector for a in dog.observe_update(1, healthy_stats(approx_kl=-0.7))] == [
            "kl_blowup"
        ]

    def test_invalid_rate_spike(self):
        cfg = HealthConfig(invalid_rate_threshold=0.8, invalid_window=20)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        fired = []
        for i in range(4):
            fired += dog.observe_iteration(
                i, best_runtime=float("inf"), n_invalid=10, n_samples=10
            )
        assert [a.detector for a in fired] == ["invalid_rate"]
        assert fired[0].value == pytest.approx(1.0)

    def test_invalid_rate_window_slides(self):
        """Old all-invalid samples age out once healthy samples arrive."""
        cfg = HealthConfig(invalid_rate_threshold=0.8, invalid_window=20, cooldown=0)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        for i in range(2):
            dog.observe_iteration(i, float("inf"), n_invalid=10, n_samples=10)
        n_before = len(dog.alerts)
        for i in range(2, 8):
            dog.observe_iteration(i, 1.0, n_invalid=0, n_samples=10)
        assert len(dog.alerts) == n_before  # rate fell below threshold

    def test_reward_plateau(self):
        cfg = HealthConfig(plateau_window=3, plateau_rel_improvement=0.01)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        fired = []
        for i in range(6):
            fired += dog.observe_iteration(i, best_runtime=2.0, n_invalid=0, n_samples=10)
        assert "reward_plateau" in [a.detector for a in fired]

    def test_no_plateau_while_improving(self):
        cfg = HealthConfig(plateau_window=3, plateau_rel_improvement=0.01)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        best = 10.0
        for i in range(10):
            best *= 0.9  # 10% better every iteration
            assert dog.observe_iteration(i, best, n_invalid=0, n_samples=10) == []

    def test_plateau_ignores_infinite_best(self):
        cfg = HealthConfig(plateau_window=2)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        for i in range(10):
            fired = dog.observe_iteration(
                i, best_runtime=float("inf"), n_invalid=0, n_samples=1
            )
            assert "reward_plateau" not in [a.detector for a in fired]

    def test_cooldown_dedupes_then_refires(self):
        cfg = HealthConfig(kl_threshold=0.1, cooldown=5)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        for i in range(12):
            dog.observe_update(i, healthy_stats(approx_kl=1.0))
        kl_alerts = [a for a in dog.alerts if a.detector == "kl_blowup"]
        # observations 1..12; fires at 1, then again once 5 observations passed
        assert 2 <= len(kl_alerts) <= 3

    def test_disabled_watchdog_is_a_noop(self):
        dog = HealthWatchdog(HealthConfig(enabled=False), telemetry=Telemetry())
        assert dog.observe_update(0, healthy_stats(policy_loss=float("nan"))) == []
        assert dog.observe_iteration(0, float("inf"), 10, 10) == []
        assert dog.observe_request(rejected=True) == []
        assert dog.alerts == []

    def test_rejection_rate_needs_full_window(self):
        cfg = HealthConfig(reject_rate_threshold=0.5, reject_window=10)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        for _ in range(9):
            assert dog.observe_request(rejected=True) == []  # window not full
        fired = dog.observe_request(rejected=True)
        assert [a.detector for a in fired] == ["rejection_rate"]
        alert = fired[0]
        assert alert.value == 1.0
        assert alert.threshold == 0.5
        assert alert.window == 10
        assert alert.iteration == -1  # not tied to a training iteration
        assert "admission control" in alert.message

    def test_rejection_rate_quiet_under_threshold(self):
        cfg = HealthConfig(reject_rate_threshold=0.5, reject_window=10)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        for i in range(40):
            assert dog.observe_request(rejected=(i % 2 == 0)) == []  # rate == 0.5
        assert dog.alerts == []

    def test_rejection_rate_window_slides(self):
        cfg = HealthConfig(reject_rate_threshold=0.5, reject_window=4, cooldown=1)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        for _ in range(4):
            dog.observe_request(rejected=True)
        assert len(dog.alerts) == 1
        # A healthy stretch pushes the rejections out of the window.
        for _ in range(4):
            dog.observe_request(rejected=False)
        before = len(dog.alerts)
        dog.observe_request(rejected=False)
        assert len(dog.alerts) == before


class TestServeSLO:
    def test_latency_slo_needs_full_window(self):
        cfg = HealthConfig(latency_slo_ms=100.0, latency_window=10)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        for _ in range(9):
            assert dog.observe_serve(500.0, ok=True) == []  # window not full
        fired = dog.observe_serve(500.0, ok=True)
        assert [a.detector for a in fired] == ["latency_slo"]
        alert = fired[0]
        assert alert.value > 100.0
        assert alert.threshold == 100.0
        assert alert.iteration == -1
        assert "p99" in alert.message

    def test_latency_under_slo_stays_quiet(self):
        cfg = HealthConfig(latency_slo_ms=100.0, latency_window=10)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        for _ in range(40):
            assert dog.observe_serve(50.0, ok=True) == []
        assert dog.alerts == []

    def test_error_burn_rate_fires_over_full_window(self):
        cfg = HealthConfig(error_rate_threshold=0.5, error_window=10)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        for i in range(9):
            assert dog.observe_serve(10.0, ok=(i % 3 == 0)) == []
        fired = dog.observe_serve(10.0, ok=False)
        assert [a.detector for a in fired] == ["error_burn_rate"]
        assert fired[0].iteration == -1

    def test_infinite_latency_does_not_poison_window(self):
        cfg = HealthConfig(latency_slo_ms=100.0, latency_window=4)
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        dog.observe_serve(float("inf"), ok=True)  # dropped, not appended
        for _ in range(3):
            assert dog.observe_serve(10.0, ok=True) == []
        assert dog.observe_serve(10.0, ok=True) == []  # full healthy window
        assert dog.alerts == []

    def test_disabled_watchdog_ignores_serve_observations(self):
        dog = HealthWatchdog(HealthConfig(enabled=False), telemetry=Telemetry())
        assert dog.observe_serve(1e9, ok=False) == []
        assert dog.alerts == []

    def test_slo_status_cold_service(self):
        dog = HealthWatchdog(HealthConfig(), telemetry=Telemetry())
        status = dog.slo_status()
        assert status["latency_p99_ms"] is None
        assert status["error_rate"] == 0.0
        assert status["latency_ok"] and status["errors_ok"] and status["rejects_ok"]
        assert status["alerts"] == 0

    def test_slo_status_reflects_violations(self):
        cfg = HealthConfig(
            latency_slo_ms=100.0, latency_window=4,
            error_rate_threshold=0.5, error_window=4,
        )
        dog = HealthWatchdog(cfg, telemetry=Telemetry())
        for _ in range(4):
            dog.observe_serve(500.0, ok=False)
        status = dog.slo_status()
        assert status["latency_p99_ms"] > 100.0
        assert not status["latency_ok"]
        assert status["error_rate"] == 1.0
        assert not status["errors_ok"]
        assert status["alerts"] == len(dog.alerts) > 0


class TestActions:
    def test_halt_sets_reason(self):
        dog = HealthWatchdog(HealthConfig(action="halt"), telemetry=Telemetry())
        dog.observe_update(0, healthy_stats(policy_loss=float("nan")))
        assert dog.halted
        assert dog.halt_reason is not None and "nan_guard" in dog.halt_reason

    def test_warn_and_log_do_not_halt(self):
        for action in ("log", "warn"):
            dog = HealthWatchdog(HealthConfig(action=action), telemetry=Telemetry())
            dog.observe_update(0, healthy_stats(policy_loss=float("nan")))
            assert dog.alerts and not dog.halted

    def test_alert_counters_incremented(self):
        tel = Telemetry()
        dog = HealthWatchdog(HealthConfig(cooldown=0, kl_threshold=0.1), telemetry=tel)
        dog.observe_update(0, healthy_stats(approx_kl=1.0))
        dog.observe_update(1, healthy_stats(approx_kl=1.0))
        snap = tel.metrics.snapshot()
        assert snap["counters"]["health.alerts"]["value"] == 2
        assert snap["counters"]["health.alerts.kl_blowup"]["value"] == 2


class TestAlertEvents:
    def test_injected_nan_produces_validating_alert_event(self, tmp_path):
        tel = start_run("health-nan", str(tmp_path))
        dog = HealthWatchdog(HealthConfig(), telemetry=tel)
        dog.observe_update(7, healthy_stats(grad_norm=float("nan")))
        tel.close()
        alerts = list(read_events(tel.run_dir, types=("alert",)))
        assert len(alerts) == 1
        event = alerts[0]
        assert validate_event(event) == []
        assert event["detector"] == "nan_guard"
        assert event["iteration"] == 7
        assert math.isnan(event["value"])


class TestTrainerIntegration:
    def _setup(self, iterations=6):
        graph = build_vgg16(scale=0.25, batch_size=4)
        cluster = ClusterSpec.default()
        env = PlacementEnv(graph, cluster)
        cfg = fast_profile(seed=0, iterations=iterations)
        agent = build_mars_agent(graph, cluster, cfg)
        return env, cfg, agent

    def test_forced_entropy_collapse_halts_and_records_reason(self, tmp_path):
        env, cfg, agent = self._setup()
        # An entropy floor above ln(num_devices) makes every window "collapsed".
        health = HealthConfig(action="halt", entropy_floor=10.0, window=1)
        tel = start_run("health-halt", str(tmp_path), manifest={"workload": "vgg"})
        with use_telemetry(tel):
            history = JointTrainer(agent, env, cfg.trainer, health=health).train()
        tel.close()

        assert history.halt_reason is not None
        assert "entropy_collapse" in history.halt_reason
        assert len(history.records) < cfg.trainer.iterations

        manifest = json.load(open(os.path.join(tel.run_dir, "manifest.json")))
        assert manifest["halted"] is True
        assert "entropy_collapse" in manifest["halt_reason"]
        assert manifest["workload"] == "vgg"  # merge kept the original keys

        alerts = list(read_events(tel.run_dir, types=("alert",)))
        assert alerts and all(validate_event(e) == [] for e in alerts)

    def test_healthy_run_completes_without_alerts(self):
        env, cfg, agent = self._setup(iterations=3)
        history = JointTrainer(
            agent, env, cfg.trainer, health=HealthConfig(action="halt")
        ).train()
        assert history.halt_reason is None
        assert len(history.records) == 3

    def test_no_health_config_defaults_on(self):
        env, cfg, agent = self._setup(iterations=2)
        trainer = JointTrainer(agent, env, cfg.trainer)
        assert trainer.health.enabled
        trainer.train()
        assert trainer.watchdog is not None

    def test_disabled_health_skips_watchdog_observations(self):
        env, cfg, agent = self._setup(iterations=2)
        health = HealthConfig(enabled=False, action="halt", entropy_floor=10.0, window=1)
        history = JointTrainer(agent, env, cfg.trainer, health=health).train()
        assert history.halt_reason is None
        assert len(history.records) == 2
