"""Unit tests for the JSONL run logger and the session lifecycle."""

import json
import os

import pytest

from repro.telemetry import start_run, use_telemetry, get_telemetry
from repro.telemetry.events import (
    EVENT_SCHEMAS,
    SCHEMA_VERSION,
    NullRunLogger,
    RunLogger,
    event_files,
    read_events,
    validate_event,
)


class TestRunLogger:
    def test_jsonl_round_trip(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunLogger(run_dir) as log:
            log.emit("oom", sim_clock=1.0, usage_gb=14.2, capacity_gb=12.0)
            log.emit("cutoff", sim_clock=2.0, per_step_time=9.9, steps_run=3)
        events = list(read_events(run_dir))
        assert [e["type"] for e in events] == ["oom", "cutoff"]
        assert events[0]["usage_gb"] == 14.2
        assert events[1]["steps_run"] == 3

    def test_every_event_carries_schema_version_and_seq(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunLogger(run_dir) as log:
            for i in range(5):
                log.emit("run_end", wall_time=float(i))
        events = list(read_events(run_dir))
        assert [e["seq"] for e in events] == list(range(5))
        assert all(e["v"] == SCHEMA_VERSION for e in events)

    def test_rotation_preserves_order_and_never_splits(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunLogger(run_dir, max_bytes=200) as log:
            for i in range(40):
                log.emit("run_end", wall_time=float(i))
        parts = event_files(run_dir)
        assert len(parts) > 1
        assert parts == sorted(parts)
        # Every line in every part is complete, parseable JSON.
        for part in parts:
            with open(part) as fh:
                for line in fh:
                    json.loads(line)
        events = list(read_events(run_dir))
        assert [e["seq"] for e in events] == list(range(40))

    def test_type_filter(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunLogger(run_dir) as log:
            log.emit("run_start", name="x", wall_time=0.0)
            log.emit("run_end", wall_time=1.0)
        only = list(read_events(run_dir, types=("run_end",)))
        assert len(only) == 1 and only[0]["type"] == "run_end"

    def test_validate_mode_rejects_bad_payload(self, tmp_path):
        log = RunLogger(str(tmp_path / "run"), validate=True)
        with pytest.raises(ValueError, match="missing field"):
            log.emit("oom", sim_clock=1.0)  # usage_gb/capacity_gb missing
        log.close()

    def test_null_logger_writes_nothing(self, tmp_path):
        log = NullRunLogger()
        assert log.emit("oom") == {}
        assert log.num_events == 0
        log.close()


class TestValidateEvent:
    def _minimal(self, etype):
        event = {"v": SCHEMA_VERSION, "type": etype, "seq": 0}
        for field, types in EVENT_SCHEMAS[etype].items():
            t = types[0]
            event[field] = {int: 1, float: 1.0, bool: True, str: "x"}[t]
        return event

    @pytest.mark.parametrize("etype", sorted(EVENT_SCHEMAS))
    def test_minimal_event_of_each_type_validates(self, etype):
        assert validate_event(self._minimal(etype)) == []

    def test_wrong_version_flagged(self):
        event = self._minimal("run_end")
        event["v"] = 99
        assert any("schema version" in e for e in validate_event(event))

    def test_unknown_type_flagged(self):
        errors = validate_event({"v": SCHEMA_VERSION, "type": "nope", "seq": 0})
        assert any("unknown event type" in e for e in errors)

    def test_wrong_field_type_flagged(self):
        event = self._minimal("sample")
        event["valid"] = "yes"  # bool required
        assert any("'valid'" in e for e in validate_event(event))

    def test_non_dict_rejected(self):
        assert validate_event([1, 2, 3]) != []

    def test_extra_fields_allowed(self):
        event = self._minimal("oom")
        event["note"] = "anything"
        assert validate_event(event) == []


class TestSessionLifecycle:
    def test_start_run_writes_manifest_and_run_start(self, tmp_path):
        tel = start_run("My Run!", str(tmp_path), manifest={"workload": "vgg16"})
        assert os.path.basename(tel.run_dir) == "My-Run"
        manifest = json.load(open(os.path.join(tel.run_dir, "manifest.json")))
        assert manifest["workload"] == "vgg16"
        assert manifest["schema_version"] == SCHEMA_VERSION
        tel.close()
        events = list(read_events(tel.run_dir))
        assert events[0]["type"] == "run_start"
        assert events[-1]["type"] == "run_end"
        assert all(validate_event(e) == [] for e in events)

    def test_close_writes_metrics_snapshot(self, tmp_path):
        tel = start_run("r", str(tmp_path))
        tel.counter("c").inc(3)
        tel.histogram("h").observe(2.0)
        tel.close()
        metrics = json.load(open(os.path.join(tel.run_dir, "metrics.json")))
        assert metrics["counters"]["c"]["value"] == 3
        assert metrics["histograms"]["h"]["count"] == 1
        tel.close()  # idempotent

    def test_duplicate_run_names_get_suffixed(self, tmp_path):
        a = start_run("r", str(tmp_path))
        b = start_run("r", str(tmp_path))
        assert a.run_dir != b.run_dir
        assert b.run_dir.endswith("r-2")
        a.close()
        b.close()

    def test_use_telemetry_stack(self, tmp_path):
        ambient = get_telemetry()
        tel = start_run("r", str(tmp_path))
        with use_telemetry(tel):
            assert get_telemetry() is tel
            with use_telemetry(None):  # passthrough
                assert get_telemetry() is tel
        assert get_telemetry() is ambient
        tel.close()
