"""Integration: a short search emits well-formed telemetry end to end."""

import json
import os

import pytest

from repro.config import fast_profile
from repro.core import optimize_placement
from repro.sim import ClusterSpec
from repro.telemetry import start_run, use_telemetry
from repro.telemetry.events import read_events, validate_event
from repro.telemetry.report import load_run, render_report, summarize_run
from repro.workloads import build_vgg16


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One short Mars search recorded into a telemetry run directory."""
    base = tmp_path_factory.mktemp("runs")
    graph = build_vgg16(scale=0.25, batch_size=4)
    tel = start_run(
        "itest", str(base), manifest={"workload": graph.name, "agent_kind": "mars"}
    )
    with use_telemetry(tel):
        optimize_placement(
            graph, ClusterSpec.default(), "mars", fast_profile(seed=0, iterations=3)
        )
    tel.close()
    return tel.run_dir


class TestTrainerRunEmitsEvents:
    def test_all_events_validate(self, run_dir):
        events = list(read_events(run_dir))
        assert events, "run produced no events"
        for event in events:
            assert validate_event(event) == [], event

    def test_expected_event_types_present(self, run_dir):
        types = {e["type"] for e in read_events(run_dir)}
        assert {
            "run_start",
            "run_end",
            "pretrain",
            "iteration",
            "sample",
            "update",
            "eval",
        } <= types

    def test_iteration_events_match_config(self, run_dir):
        iters = list(read_events(run_dir, types=("iteration",)))
        assert len(iters) == 3
        assert [e["iteration"] for e in iters] == [0, 1, 2]
        # best runtime is monotonically non-increasing
        bests = [e["best_runtime"] for e in iters]
        assert bests == sorted(bests, reverse=True)
        assert all(e["sim_clock"] > 0 for e in iters)
        assert all(e["wall_seconds"] > 0 for e in iters)

    def test_sample_events_cover_every_iteration(self, run_dir):
        samples = list(read_events(run_dir, types=("sample",)))
        iters = list(read_events(run_dir, types=("iteration",)))
        # 'samples' on the iteration event is the cumulative count.
        assert len(samples) == iters[-1]["samples"]
        cumulative = [e["samples"] for e in iters]
        assert cumulative == sorted(cumulative)

    def test_update_events_carry_ppo_diagnostics(self, run_dir):
        updates = list(read_events(run_dir, types=("update",)))
        assert updates
        for e in updates:
            assert e["entropy"] >= 0.0
            assert 0.0 <= e["clip_fraction"] <= 1.0
            assert e["passes"] >= 1

    def test_metrics_snapshot_has_enough_names(self, run_dir):
        metrics = json.load(open(os.path.join(run_dir, "metrics.json")))
        names = (
            list(metrics["counters"])
            + list(metrics["gauges"])
            + list(metrics["histograms"])
        )
        assert len(names) >= 12, sorted(names)
        assert "trainer.iterations" in metrics["counters"]
        assert "env.evaluations" in metrics["counters"]
        assert "trainer.entropy" in metrics["histograms"]

    def test_report_renders(self, run_dir):
        text = render_report(run_dir)
        assert "itest" in text
        assert "iteration" in text
        summary = summarize_run(load_run(run_dir))
        assert summary["schema_errors"] == []
        assert summary["event_counts"]["iteration"] == 3

    def test_trace_export_from_events(self, run_dir, tmp_path):
        from repro.analysis.trace import events_to_chrome_trace

        out = str(tmp_path / "run.trace.json")
        trace = events_to_chrome_trace(list(read_events(run_dir)), path=out)
        assert trace["traceEvents"], "trace export produced no slices"
        reloaded = json.load(open(out))
        assert {e["ph"] for e in reloaded["traceEvents"]} & {"X", "C"}


class TestDurationsSurviveClockSteps:
    def test_run_duration_is_monotonic_not_wall(self, tmp_path, monkeypatch):
        """`run_end.duration_s` must stay sane when NTP steps the wall
        clock mid-run; the `wall_time` timestamps may (and do) jump."""
        import time as time_module

        real_time = time_module.time
        tel = start_run("clockstep", str(tmp_path))
        # Step the wall clock one hour into the past before close().
        monkeypatch.setattr(time_module, "time", lambda: real_time() - 3600.0)
        tel.close()

        events = {e["type"]: e for e in read_events(tel.run_dir)}
        start, end = events["run_start"], events["run_end"]
        # The step is visible in the timestamps...
        assert end["wall_time"] < start["wall_time"]
        # ...but the duration comes from the monotonic clock.
        assert 0.0 <= end["duration_s"] < 60.0

    def test_timer_histogram_tolerates_clock_step(self, monkeypatch):
        import time as time_module

        from repro.telemetry import Telemetry

        real_time = time_module.time
        tel = Telemetry()
        with tel.timer("step_s"):
            monkeypatch.setattr(time_module, "time", lambda: real_time() - 3600.0)
        snap = tel.metrics.snapshot()["histograms"]["step_s"]
        assert 0.0 <= snap["max"] < 60.0


class TestDisabledTelemetry:
    def test_search_runs_clean_with_telemetry_disabled(self, tmp_path):
        from dataclasses import replace

        config = fast_profile(seed=0, iterations=2)
        config = replace(config, telemetry=replace(config.telemetry, enabled=False))
        graph = build_vgg16(scale=0.25, batch_size=4)
        result = optimize_placement(graph, ClusterSpec.default(), "mars_no_pretrain", config)
        assert result.history.best_placement is not None
        assert not list(tmp_path.iterdir()), "disabled telemetry wrote files"
