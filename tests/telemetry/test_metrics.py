"""Unit tests for the metrics registry (counters, histograms, timers)."""

import math
import time

import pytest

from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounterGauge:
    def test_counter_monotone(self):
        m = MetricsRegistry()
        m.counter("x").inc()
        m.counter("x").inc(4)
        assert m.counter("x").value == 5

    def test_gauge_last_value_wins(self):
        m = MetricsRegistry()
        m.gauge("g").set(1.0)
        m.gauge("g").set(2.5)
        assert m.gauge("g").value == 2.5
        assert m.gauge("g").updates == 2

    def test_get_or_create_identity(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.histogram("h") is m.histogram("h")


class TestHistogram:
    def test_exact_moments(self):
        h = Histogram("h")
        for v in [1.0, 2.0, 3.0, 10.0]:
            h.observe(v)
        assert h.count == 4
        assert h.total == 16.0
        assert h.min == 1.0 and h.max == 10.0
        assert h.mean == 4.0

    def test_quantiles_exact_when_small(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0
        assert abs(h.quantile(0.5) - 50.5) < 1.0

    def test_quantiles_streaming_approximation(self):
        # 10k observations through a 512-slot reservoir: quantile
        # estimates must stay within a few percent of the true values.
        h = Histogram("h", reservoir_size=512)
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000
        assert abs(h.quantile(0.50) - 5_000) < 1_000
        assert abs(h.quantile(0.95) - 9_500) < 600
        assert abs(h.quantile(0.99) - 9_900) < 400

    def test_deterministic_reservoir(self):
        a, b = Histogram("same"), Histogram("same")
        for v in range(5_000):
            a.observe(float(v))
            b.observe(float(v))
        assert a.quantile(0.5) == b.quantile(0.5)

    def test_reservoir_seed_stable_across_processes(self):
        # Regression: the per-name seed used `hash(name)`, which Python
        # salts per process (PYTHONHASHSEED) — quantile estimates differed
        # between runs despite the "deterministic" comment. The seed must
        # be a process-independent digest of the name.
        import random
        import zlib

        h = Histogram("env.makespan")
        expected = random.Random(zlib.crc32(b"env.makespan"))
        assert h._rng.getstate() == expected.getstate()

    def test_empty_quantile_nan(self):
        assert math.isnan(Histogram("h").quantile(0.5))

    def test_snapshot_keys(self):
        m = MetricsRegistry()
        m.histogram("h").observe(1.0)
        snap = m.snapshot()["histograms"]["h"]
        for key in ("count", "sum", "min", "max", "mean", "p50", "p95", "p99"):
            assert key in snap


class TestTimers:
    def test_timer_records_elapsed(self):
        m = MetricsRegistry()
        with m.timer("t_s"):
            time.sleep(0.01)
        h = m.histogram("t_s")
        assert h.count == 1
        assert h.total >= 0.009

    def test_timer_nesting_records_both(self):
        m = MetricsRegistry()
        with m.timer("outer"):
            with m.timer("inner"):
                pass
        assert m.histogram("outer").count == 1
        assert m.histogram("inner").count == 1
        assert m.histogram("outer").total >= m.histogram("inner").total

    def test_profile_section_hierarchical_names(self):
        m = MetricsRegistry()
        with m.profile_section("train"):
            with m.profile_section("sample"):
                pass
            with m.profile_section("update"):
                pass
        assert m.histogram("profile.train").count == 1
        assert m.histogram("profile.train/sample").count == 1
        assert m.histogram("profile.train/update").count == 1
        # Stack unwinds fully: a later top-level section is not nested.
        with m.profile_section("eval"):
            pass
        assert m.histogram("profile.eval").count == 1

    def test_timer_survives_exception(self):
        m = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with m.timer("t"):
                raise RuntimeError("boom")
        assert m.histogram("t").count == 1

    def test_profile_section_unwinds_on_exception(self):
        m = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with m.profile_section("a"):
                raise RuntimeError("boom")
        with m.profile_section("b"):
            pass
        assert m.histogram("profile.b").count == 1


class TestNullSink:
    def test_null_registry_is_inert(self):
        m = NullMetricsRegistry()
        m.counter("c").inc(5)
        m.gauge("g").set(1.0)
        m.histogram("h").observe(2.0)
        with m.timer("t"):
            pass
        with m.profile_section("s"):
            pass
        assert m.names() == []
        assert m.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert m.counter("c").value == 0
        assert m.histogram("h").count == 0

    def test_disabled_telemetry_uses_null_sinks(self):
        tel = Telemetry(enabled=False)
        tel.counter("c").inc()
        tel.emit("iteration", iteration=0)  # invalid payload: must not raise
        assert tel.metrics.names() == []
        assert not tel.sample_events

    def test_null_telemetry_singleton_close_is_safe(self):
        NULL_TELEMETRY.close()
        NULL_TELEMETRY.counter("x").inc()
        assert NULL_TELEMETRY.metrics.names() == []
