#!/usr/bin/env python
"""End-to-end report smoke test (``make report-smoke``).

Runs a tiny search with telemetry into a temp directory, then renders
the full report — including the ``--health`` alert timeline and the
``--attribution`` Gantt/top-k sections — and a ``--diff`` of the run
against itself. Exits non-zero if any stage fails, so ``make test``
catches a report pipeline that crashes on real run directories before
a user does.
"""

from __future__ import annotations

import os
import sys
import tempfile
from dataclasses import replace

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.config import fast_profile  # noqa: E402
from repro.core import optimize_placement  # noqa: E402
from repro.sim import ClusterSpec  # noqa: E402
from repro.telemetry import HealthConfig, start_run, use_telemetry  # noqa: E402
from repro.telemetry.report import diff_runs, main as report_main  # noqa: E402
from repro.workloads import build_vgg16  # noqa: E402


def run() -> int:
    graph = build_vgg16(scale=0.25, batch_size=4)
    # plateau_window=2 guarantees at least one alert on a 4-iteration run,
    # so the --health section renders a real timeline, not the fallback.
    config = replace(
        fast_profile(seed=0, iterations=4),
        health=HealthConfig(action="warn", plateau_window=2, cooldown=0),
    )
    with tempfile.TemporaryDirectory() as tmp:
        tel = start_run(
            "report-smoke", tmp, manifest={"workload": graph.name, "agent_kind": "mars"}
        )
        with use_telemetry(tel):
            result = optimize_placement(
                graph, ClusterSpec.default(), "mars_no_pretrain", config
            )
        tel.close()
        if result.history.best_placement is None:
            print("report-smoke: search found no valid placement", file=sys.stderr)
            return 1

        rc = report_main([tel.run_dir, "--health", "--attribution"])
        if rc != 0:
            print(f"report-smoke: report exited {rc}", file=sys.stderr)
            return rc
        diff = diff_runs(tel.run_dir, tel.run_dir)
        if diff["alerts"]["delta"] != 0 or diff["best_runtime"]["delta"] != 0.0:
            print("report-smoke: self-diff is not a no-op", file=sys.stderr)
            return 1
    print("\nreport-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(run())
