#!/usr/bin/env python
"""End-to-end crash-safe-resume smoke test (``make resume-smoke``).

Three child processes, compared bit-for-bit:

1. **baseline** — an uninterrupted 6-iteration search; prints its
   ``SearchHistory`` as canonical JSON.
2. **interrupted** — the same search with snapshots on, except a real
   ``SIGTERM`` is delivered to the process after iteration 3 (raised from
   inside a :class:`RunStateManager` subclass, so the genuine signal
   handler and the trainer's finish-iteration/snapshot/halt path run).
3. **resumed** — a *fresh* process that picks the run up with
   ``resume=True`` and finishes it.

The resumed history must equal the baseline byte-for-byte — including
best placement, measurement clock and every per-iteration record. Using
separate processes also regression-tests cross-process determinism of
the snapshot format (e.g. the measurement noise seeded from the stable
``Placement.__hash__``).

Exit status is non-zero on any mismatch.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile

ITER_TOTAL = 6
ITER_KILL_AFTER = 3
SEED = 0


def _build(iterations: int):
    from dataclasses import replace

    from repro.config import fast_profile
    from repro.sim.cluster import ClusterSpec
    from repro.workloads import get_workload

    cfg = fast_profile(seed=SEED, iterations=iterations)
    cfg = replace(
        cfg,
        pretrain=replace(cfg.pretrain, iterations=5),
        snapshot=replace(cfg.snapshot, snapshot_every=2),
    )
    return get_workload("vgg16"), ClusterSpec.default(), cfg


def _print_history(result) -> None:
    from repro.core.runstate import history_to_json

    doc = history_to_json(result.history)
    doc["final_runtime"] = repr(result.final_runtime)
    print("HISTORY " + json.dumps(doc, sort_keys=True))


def child_baseline() -> int:
    from repro.core.search import optimize_placement

    graph, cluster, cfg = _build(ITER_TOTAL)
    _print_history(optimize_placement(graph, cluster, "mars", cfg))
    return 0


def child_interrupted(snap_dir: str) -> int:
    from repro.core.runstate import RunStateManager, install_signal_handlers
    from repro.core import search as search_mod
    from repro.core.search import optimize_placement

    install_signal_handlers()

    class SigtermAfter(RunStateManager):
        """Delivers a real SIGTERM once iteration ITER_KILL_AFTER ends."""

        def after_iteration(self, trainer, history, telemetry=None, force=False):
            if len(history.records) == ITER_KILL_AFTER:
                os.kill(os.getpid(), signal.SIGTERM)
            return super().after_iteration(trainer, history, telemetry, force=force)

    search_mod.RunStateManager = SigtermAfter
    graph, cluster, cfg = _build(ITER_TOTAL)
    result = optimize_placement(graph, cluster, "mars", cfg, snapshot_dir=snap_dir)
    halt = result.history.halt_reason
    if halt != "signal: SIGTERM":
        print(f"FAIL interrupted child: halt_reason={halt!r}", file=sys.stderr)
        return 1
    if len(result.history.records) != ITER_KILL_AFTER:
        print(
            f"FAIL interrupted child: ran {len(result.history.records)} "
            f"iterations, expected {ITER_KILL_AFTER}",
            file=sys.stderr,
        )
        return 1
    return 0


def child_resumed(snap_dir: str) -> int:
    from repro.core.search import optimize_placement

    graph, cluster, cfg = _build(ITER_TOTAL)
    _print_history(
        optimize_placement(graph, cluster, "mars", cfg, snapshot_dir=snap_dir, resume=True)
    )
    return 0


def _run_child(role: str, *args: str) -> "subprocess.CompletedProcess":
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")] if p
    )
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), role, *args],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        print(f"child {role!r} failed (exit {proc.returncode}):", file=sys.stderr)
        sys.stderr.write(proc.stderr)
        raise SystemExit(1)
    return proc


def _history_line(proc) -> str:
    for line in proc.stdout.splitlines():
        if line.startswith("HISTORY "):
            return line[len("HISTORY "):]
    raise SystemExit("child printed no HISTORY line")


def main() -> int:
    snap_dir = tempfile.mkdtemp(prefix="resume-smoke-")
    try:
        baseline = _run_child("baseline")
        _run_child("interrupted", snap_dir)
        resumed = _run_child("resumed", snap_dir)
        doc_base, doc_resumed = _history_line(baseline), _history_line(resumed)
        if doc_base != doc_resumed:
            print("FAIL: resumed history differs from uninterrupted baseline", file=sys.stderr)
            print("baseline:", doc_base, file=sys.stderr)
            print("resumed: ", doc_resumed, file=sys.stderr)
            return 1
        n = len(json.loads(doc_base)["records"])
        print(f"resume-smoke: OK (SIGTERM after {ITER_KILL_AFTER}/{n} iterations, "
              "resumed run bit-identical to uninterrupted baseline)")
        return 0
    finally:
        shutil.rmtree(snap_dir, ignore_errors=True)


if __name__ == "__main__":
    if len(sys.argv) > 1:
        role = sys.argv[1]
        if role == "baseline":
            sys.exit(child_baseline())
        if role == "interrupted":
            sys.exit(child_interrupted(sys.argv[2]))
        if role == "resumed":
            sys.exit(child_resumed(sys.argv[2]))
        sys.exit(f"unknown role {role!r}")
    sys.exit(main())
