#!/usr/bin/env python
"""Documentation lint: Markdown link check + event-fixture validation.

Run from the repo root (``make lint-docs`` does):

    python tools/lint_docs.py

Four checks, all stdlib-only:

1. Every relative link/image target in the repo's Markdown files must
   exist on disk (``http(s)://``, ``mailto:`` and pure ``#anchor`` links
   are skipped; a ``target#anchor`` suffix is stripped before the check).
2. Every repo-looking path named in inline code in ``docs/*.md`` (e.g.
   ```` `src/repro/sim/incremental.py` ````) must exist, resolved
   against the repo root, ``src/`` and ``src/repro/``. Only tokens whose
   first segment is a real top-level directory count as path claims, so
   illustrative paths (``runs/<id>/events.jsonl``) and globs stay exempt;
   fenced code blocks are skipped like the link check.
3. Every ``tests/fixtures/*.jsonl`` event fixture must parse as JSONL
   and validate against the event schema in ``repro.telemetry.events``
   — keeping docs/observability.md's schema reference, the fixtures,
   and the code in sync. Coverage is also enforced: every event type
   registered in ``EVENT_SCHEMAS`` must appear in at least one fixture
   line, so a new event type cannot ship without a validated example.
4. Every metric name recorded under ``src/`` — a string literal passed
   to ``counter(...)`` / ``gauge(...)`` / ``histogram(...)`` — must
   appear in docs/observability.md's metric glossary, so a new metric
   cannot ship undocumented.

Exit status is non-zero if any check fails.
"""

from __future__ import annotations

import glob
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.telemetry.events import EVENT_SCHEMAS, validate_event  # noqa: E402

# [text](target) and ![alt](target); target ends at the first ')' or space.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
_SKIP_DIRS = {".git", ".mars_cache", "__pycache__", ".pytest_cache", "runs"}


def iter_markdown_files():
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames if d not in _SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks — example links in them aren't promises."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def check_markdown_links() -> list:
    errors = []
    for path in sorted(iter_markdown_files()):
        rel = os.path.relpath(path, REPO_ROOT)
        text = strip_code_blocks(open(path, encoding="utf-8").read())
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken link -> {match.group(1)}")
    return errors


# Inline `code` spans; path tokens inside them are promises about the tree.
_CODE_SPAN_RE = re.compile(r"`([^`\n]+)`")
_PATH_TOKEN_RE = re.compile(r"[A-Za-z0-9_][A-Za-z0-9_./-]*")
_PATH_EXTS = (".py", ".md", ".json", ".jsonl", ".txt", ".toml", ".cfg", ".ini", ".yaml", ".yml")


def _iter_path_tokens(span: str):
    for token in _PATH_TOKEN_RE.findall(span):
        token = token.rstrip(".")  # trailing sentence punctuation
        if "/" in token and token.endswith(_PATH_EXTS):
            yield token


def check_doc_path_references() -> list:
    """Stale-path check: docs/*.md must not name files that do not exist."""
    errors = []
    roots = (
        REPO_ROOT,
        os.path.join(REPO_ROOT, "src"),
        os.path.join(REPO_ROOT, "src", "repro"),
    )
    for path in sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md"))):
        rel = os.path.relpath(path, REPO_ROOT)
        text = strip_code_blocks(open(path, encoding="utf-8").read())
        for span in _CODE_SPAN_RE.finditer(text):
            for token in _iter_path_tokens(span.group(1)):
                if any(os.path.exists(os.path.join(root, token)) for root in roots):
                    continue
                # Only a repo-path claim if the leading segment is a real
                # top-level directory; leaves illustrative paths alone.
                head = token.split("/", 1)[0]
                if any(os.path.isdir(os.path.join(root, head)) for root in roots):
                    errors.append(f"{rel}: stale path reference -> {token}")
    return errors


def check_event_fixtures() -> list:
    errors = []
    pattern = os.path.join(REPO_ROOT, "tests", "fixtures", "*.jsonl")
    fixtures = sorted(glob.glob(pattern))
    if not fixtures:
        return [f"no JSONL fixtures found under {pattern}"]
    seen_types = set()
    for path in fixtures:
        rel = os.path.relpath(path, REPO_ROOT)
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError as exc:
                    errors.append(f"{rel}:{lineno}: not JSON ({exc})")
                    continue
                seen_types.add(event.get("type"))
                for problem in validate_event(event):
                    errors.append(f"{rel}:{lineno}: {problem}")
    missing = sorted(set(EVENT_SCHEMAS) - seen_types)
    if missing:
        errors.append(
            "fixture coverage: no fixture line for event type(s) "
            f"{', '.join(missing)} (add one to tests/fixtures/*.jsonl)"
        )
    return errors


# `tel.counter("env.oom")`, `registry.histogram('serve.latency_ms')`, ...
# The literal-argument requirement is deliberate: dynamically-built metric
# names can't be linted, and the codebase doesn't build any.
_METRIC_CALL_RE = re.compile(
    r"\b(?:counter|gauge|histogram)\(\s*['\"]([A-Za-z0-9._]+)['\"]"
)


def check_metric_glossary() -> list:
    """Every metric recorded under src/ must be in the observability
    glossary (docs/observability.md)."""
    glossary_path = os.path.join(REPO_ROOT, "docs", "observability.md")
    if not os.path.exists(glossary_path):
        return ["docs/observability.md missing (metric glossary home)"]
    glossary = open(glossary_path, encoding="utf-8").read()
    errors = []
    recorded = {}  # name -> first "file:line" that records it
    for path in sorted(
        glob.glob(os.path.join(REPO_ROOT, "src", "**", "*.py"), recursive=True)
    ):
        rel = os.path.relpath(path, REPO_ROOT)
        for lineno, line in enumerate(open(path, encoding="utf-8"), 1):
            for match in _METRIC_CALL_RE.finditer(line):
                recorded.setdefault(match.group(1), f"{rel}:{lineno}")
    for name in sorted(recorded):
        # A glossary row mentions the metric in a code span: `env.oom`.
        if f"`{name}`" not in glossary:
            errors.append(
                f"{recorded[name]}: metric {name!r} is recorded but not in "
                "the docs/observability.md metric glossary"
            )
    return errors


def main() -> int:
    errors = (
        check_markdown_links()
        + check_doc_path_references()
        + check_event_fixtures()
        + check_metric_glossary()
    )
    for error in errors:
        print(error, file=sys.stderr)
    n_md = len(list(iter_markdown_files()))
    if errors:
        print(f"lint-docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"lint-docs: OK ({n_md} Markdown files, fixtures valid)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
