#!/usr/bin/env python
"""Mutable-default lint: no call expressions in ``def`` defaults.

Run from the repo root (``make lint-defaults`` does):

    python tools/lint_defaults.py

Python evaluates default arguments **once**, at function definition time.
A default like ``config: AnnealingConfig = AnnealingConfig()`` therefore
builds a single shared instance: every caller that omits the argument
gets the *same object*, and any mutation through one call silently leaks
into all the others (the bug fixed in ``repro/core/annealing.py``). The
safe idiom is ``config: Optional[AnnealingConfig] = None`` plus
``config = config if config is not None else AnnealingConfig()`` in the
body — or ``dataclasses.field(default_factory=...)`` for dataclasses.

This linter walks every ``*.py`` under ``src/`` and fails on any
function-signature default (positional or keyword-only) that is a call
expression — ``Foo()``, ``dict()``, ``[]``-building helpers and the
like. Literal containers (``[]``, ``{}``) are flagged too, same trap.
Immutable literals, names (``None``, ``math.inf``), attribute lookups
and constant tuples pass.

Exit status is non-zero if any check fails.
"""

from __future__ import annotations

import ast
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

_SKIP_DIRS = {"__pycache__"}


def iter_python_files():
    for dirpath, dirnames, filenames in os.walk(SRC_ROOT):
        dirnames[:] = [d for d in dirnames if d not in _SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _bad_default(node: ast.expr) -> str:
    """Why this default expression is unsafe, or '' if it is fine."""
    if isinstance(node, ast.Call):
        return "call expression (evaluated once, instance shared by every call)"
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return "mutable literal (one shared instance for every call)"
    return ""


def check_file(path: str) -> list:
    errors = []
    rel = os.path.relpath(path, REPO_ROOT)
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return [f"{rel}: does not parse ({exc})"]
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            why = _bad_default(default)
            if why:
                errors.append(
                    f"{rel}:{default.lineno}: default "
                    f"`{ast.unparse(default)}` in `def {node.name}(...)` "
                    f"is a {why}; use `Optional[...] = None` and build it "
                    "in the body"
                )
    return errors


def main() -> int:
    files = list(iter_python_files())
    errors = []
    for path in files:
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"lint-defaults: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"lint-defaults: OK ({len(files)} Python files under src/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
