#!/usr/bin/env python
"""Concurrent end-to-end smoke test for ``repro.serve`` (``make serve-smoke``).

Builds a two-policy checkpoint directory, starts the HTTP placement
server on an ephemeral port, and drives it the way a real deployment
gets driven:

* 8 client threads issue 64 requests (mixed graph documents, workload
  names and refinement budgets) and every response is checked for a
  policy id, a positive latency and a complete placement;
* responses with identical fingerprints must carry identical placements
  (the cache-consistency contract), and the duplicate-heavy mix must
  produce a non-zero cache hit rate;
* every response must carry a non-empty ``trace_id``, unique across the
  run (one trace per request), and after shutdown the recorded ``span``
  events must form a single-rooted tree per trace — one ``http.request``
  root per ``/place`` request, no orphan parents;
* one ``GET /metrics`` scrape must return valid Prometheus text
  exposition covering the ``serve.*`` and ``env.*`` metrics;
* a deliberately undersized second service (1 worker, queue of 1) is
  flooded to prove overload surfaces as the typed 503 ``overloaded``
  error immediately — never a hang or silent queueing;
* a thundering herd of 64 identical concurrent requests against a cold
  cache must compute exactly once: one ``miss``, every other response
  ``coalesced`` (joined the in-flight single-flight computation) or
  ``hit``, all carrying the identical placement.

Exits non-zero on any violation, so ``make test`` catches a serving
regression before a user does. See docs/serving.md for the guide.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.config import fast_profile  # noqa: E402
from repro.core import save_agent  # noqa: E402
from repro.core.search import build_agent  # noqa: E402
from repro.graph import CompGraph, OpNode, graph_to_dict  # noqa: E402
from repro.serve import (  # noqa: E402
    PlacementServer,
    PlacementService,
    PolicyRegistry,
    RequestQueue,
    ServeConfig,
)
from repro.sim import ClusterSpec  # noqa: E402
from repro.telemetry import read_events, start_run  # noqa: E402

N_THREADS = 8
N_REQUESTS = 64


def tiny_graph() -> CompGraph:
    """A 6-op diamond DAG (mirrors the unit-test workload)."""
    g = CompGraph("tiny")
    g.add_node(OpNode("in", "Input", (4, 8), cpu_only=True))
    g.add_node(OpNode("a", "MatMul", (4, 16), flops=1e6, param_bytes=512), inputs=["in"])
    g.add_node(OpNode("b", "ReLU", (4, 16), flops=64), inputs=["a"])
    g.add_node(OpNode("c", "MatMul", (4, 16), flops=1e6, param_bytes=1024), inputs=["a"])
    g.add_node(OpNode("d", "Concat", (4, 32)), inputs=["b", "c"])
    g.add_node(OpNode("loss", "CrossEntropy", (1,), flops=128), inputs=["d"])
    return g


def chain_graph(name: str = "chain", length: int = 5) -> CompGraph:
    g = CompGraph(name)
    g.add_node(OpNode("in", "Input", (4, 8), cpu_only=True))
    prev = "in"
    for i in range(length):
        node = f"op{i}"
        g.add_node(
            OpNode(node, "MatMul", (4, 16), flops=1e6, param_bytes=256),
            inputs=[prev],
        )
        prev = node
    g.add_node(OpNode("loss", "CrossEntropy", (1,), flops=64), inputs=[prev])
    return g


def build_checkpoints(ckpt_dir: str, cluster: ClusterSpec) -> None:
    cfg = fast_profile(seed=0)
    for stem, graph in (("mars__tiny", tiny_graph()), ("mars__chain", chain_graph())):
        agent, _ = build_agent("mars_no_pretrain", graph, cluster, cfg, None)
        save_agent(
            os.path.join(ckpt_dir, stem), agent, "mars",
            workload=graph.name, config=cfg,
        )


def post(url: str, doc: dict, timeout: float = 60.0):
    req = urllib.request.Request(
        url + "/place",
        data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def fail(message: str) -> None:
    print(f"serve-smoke FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def concurrent_traffic(url: str) -> None:
    """64 mixed requests from 8 threads; verify every response invariant."""
    bodies = [
        {"graph": graph_to_dict(tiny_graph()), "budget": 0},
        {"graph": graph_to_dict(tiny_graph()), "budget": 4},
        {"graph": graph_to_dict(chain_graph()), "budget": 0},
        {"graph": graph_to_dict(chain_graph()), "budget": 2},
    ]
    results, errors = [], []
    lock = threading.Lock()

    def client(thread_idx: int) -> None:
        for i in range(N_REQUESTS // N_THREADS):
            body = bodies[(thread_idx + i) % len(bodies)]
            try:
                status, doc = post(url, body)
            except Exception as exc:  # noqa: BLE001 - smoke must report, not crash
                with lock:
                    errors.append(f"thread {thread_idx}: {exc!r}")
                return
            with lock:
                results.append((status, doc))

    threads = [threading.Thread(target=client, args=(t,)) for t in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    if errors:
        fail("; ".join(errors[:3]))
    if len(results) != N_REQUESTS:
        fail(f"expected {N_REQUESTS} responses, got {len(results)}")

    by_fingerprint = {}
    hits = 0
    trace_ids = []
    for status, doc in results:
        if status != 200:
            fail(f"request failed with {status}: {doc}")
        if not doc.get("policy_id"):
            fail(f"response missing policy id: {doc}")
        if not (doc.get("latency_ms", 0) > 0):
            fail(f"response missing positive latency: {doc}")
        if not doc.get("placement"):
            fail(f"response missing placement: {doc}")
        if not doc.get("trace_id"):
            fail(f"response missing trace_id: {doc}")
        trace_ids.append(doc["trace_id"])
        if doc["cache"] == "hit":
            hits += 1
        key = (doc["fingerprint"], doc["budget"])
        seen = by_fingerprint.setdefault(key, doc["placement"])
        if seen != doc["placement"]:
            fail(f"divergent placements for identical fingerprint {key}")
    if hits == 0:
        fail("no cache hits across 64 requests with duplicate graphs")
    if len(set(trace_ids)) != len(trace_ids):
        fail("trace_ids are not unique across requests (traces merged)")
    print(
        f"serve-smoke: {len(results)} requests over {N_THREADS} threads, "
        f"{hits} cache hits, {len(by_fingerprint)} distinct (fingerprint, budget) keys"
    )


def scrape_metrics(url: str) -> None:
    """One /metrics scrape: valid exposition text, serve.* + env.* present."""
    import re

    with urllib.request.urlopen(url + "/metrics", timeout=30.0) as resp:
        status = resp.status
        ctype = resp.headers.get("Content-Type", "")
        text = resp.read().decode("utf-8")
    if status != 200:
        fail(f"/metrics returned {status}")
    if not ctype.startswith("text/plain"):
        fail(f"/metrics Content-Type {ctype!r} is not text exposition")
    sample_re = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9eE+.naifNIF]+$"
    )
    names = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if not sample_re.match(line):
            fail(f"/metrics line {lineno} is not valid exposition: {line!r}")
        names.add(line.split("{", 1)[0].split(" ", 1)[0])
    for prefix in ("serve_", "env_"):
        if not any(name.startswith(prefix) for name in names):
            fail(f"/metrics has no {prefix}* metrics: {sorted(names)[:10]}")
    print(f"serve-smoke: /metrics OK ({len(names)} metric sample names)")


def check_span_tree(run_dir: str) -> None:
    """Every recorded trace must be a single-rooted tree with no orphans."""
    traces = {}
    for event in read_events(run_dir, types=("span",)):
        traces.setdefault(event["trace_id"], []).append(event)
    if not traces:
        fail("no span events recorded by a traced serve run")
    http_roots = 0
    for trace_id, spans in traces.items():
        span_ids = {s["span_id"] for s in spans}
        roots = [s for s in spans if s["parent_id"] == ""]
        if len(roots) != 1:
            fail(
                f"trace {trace_id} has {len(roots)} roots "
                f"({[s['name'] for s in roots]}), expected exactly 1"
            )
        for s in spans:
            if s["parent_id"] and s["parent_id"] not in span_ids:
                fail(
                    f"orphan span {s['name']} in trace {trace_id}: "
                    f"parent {s['parent_id']} was never recorded"
                )
        if roots[0]["name"] == "http.request":
            http_roots += 1
    if http_roots != N_REQUESTS:
        fail(
            f"expected {N_REQUESTS} http.request-rooted traces, "
            f"got {http_roots} (of {len(traces)} traces)"
        )
    n_spans = sum(len(spans) for spans in traces.values())
    print(
        f"serve-smoke: span trees OK ({n_spans} spans, {len(traces)} traces, "
        f"{http_roots} request roots)"
    )


def overload_traffic(registry: PolicyRegistry) -> None:
    """Flood an undersized service; overload must be a fast typed 503."""
    service = PlacementService(
        registry, config=ServeConfig(workers=1, max_queue=1, max_batch=1)
    )
    server = PlacementServer(service, port=0, queue=RequestQueue(service)).start()
    try:
        body = {"graph": graph_to_dict(tiny_graph()), "budget": 8, "use_cache": False}
        statuses, durations = [], []
        lock = threading.Lock()

        def client() -> None:
            start = time.perf_counter()
            status, doc = post(server.address, body)
            with lock:
                statuses.append((status, doc.get("error", "")))
                durations.append(time.perf_counter() - start)

        threads = [threading.Thread(target=client) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)

        rejected = [s for s in statuses if s == (503, "overloaded")]
        served = [s for s, _ in statuses if s == 200]
        if not rejected:
            fail(f"flooding a queue of 1 produced no 503 overloaded: {statuses}")
        if not served:
            fail("overloaded service served nothing at all")
        if max(durations) > 60.0:
            fail(f"a flooded request took {max(durations):.1f}s — that is a hang")
        print(
            f"serve-smoke: overload path OK "
            f"({len(served)} served, {len(rejected)} typed 503 rejections)"
        )
    finally:
        server.shutdown()


def thundering_herd(registry: PolicyRegistry) -> None:
    """64 identical concurrent requests must compute exactly once.

    Single-flight coalescing guarantees this structurally: the first
    request to reach the service leads the computation and everyone
    else either joins its flight (``coalesced``) or lands after the
    result is cached (``hit``) — regardless of thread interleaving.
    """
    service = PlacementService(registry, config=ServeConfig(workers=4, max_queue=128))
    server = PlacementServer(service, port=0, queue=RequestQueue(service)).start()
    try:
        body = {"graph": graph_to_dict(chain_graph("herd", 7)), "budget": 8}
        barrier = threading.Barrier(N_REQUESTS)
        results, errors = [], []
        lock = threading.Lock()

        def client() -> None:
            try:
                barrier.wait(timeout=60.0)
                status, doc = post(server.address, body, timeout=120.0)
            except Exception as exc:  # noqa: BLE001 - smoke must report, not crash
                with lock:
                    errors.append(repr(exc))
                return
            with lock:
                results.append((status, doc))

        threads = [threading.Thread(target=client) for _ in range(N_REQUESTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        if errors:
            fail("herd client errors: " + "; ".join(errors[:3]))
        if len(results) != N_REQUESTS:
            fail(f"herd expected {N_REQUESTS} responses, got {len(results)}")

        caches = [doc["cache"] for _, doc in results]
        placements = [doc["placement"] for _, doc in results]
        for status, doc in results:
            if status != 200:
                fail(f"herd request failed with {status}: {doc}")
        misses = caches.count("miss")
        if misses != 1:
            fail(f"herd of {N_REQUESTS} identical requests computed {misses} times")
        stray = set(caches) - {"miss", "hit", "coalesced"}
        if stray:
            fail(f"herd produced unexpected cache states: {sorted(stray)}")
        if any(p != placements[0] for p in placements):
            fail("herd responses disagree on the placement")
        print(
            f"serve-smoke: thundering herd OK ({N_REQUESTS} identical requests -> "
            f"1 compute, {caches.count('coalesced')} coalesced, "
            f"{caches.count('hit')} hits)"
        )
    finally:
        server.shutdown()


def run() -> int:
    cluster = ClusterSpec.default()
    with tempfile.TemporaryDirectory() as ckpt_dir, \
            tempfile.TemporaryDirectory() as tel_dir:
        build_checkpoints(ckpt_dir, cluster)
        registry = PolicyRegistry(ckpt_dir)
        if len(registry) != 2:
            fail(f"expected a 2-policy registry, got {len(registry)}")
        # File-backed session so request spans are recorded and the span
        # trees can be checked after shutdown.
        tel = start_run("serve-smoke", tel_dir)
        try:
            service = PlacementService(
                registry, config=ServeConfig(workers=4, max_queue=128),
                telemetry=tel,
            )
            server = PlacementServer(
                service, port=0, queue=RequestQueue(service)
            ).start()
            try:
                concurrent_traffic(server.address)
                scrape_metrics(server.address)
            finally:
                server.shutdown()
        finally:
            tel.close()
        check_span_tree(tel.run_dir)
        overload_traffic(registry)
        thundering_herd(registry)
    print("serve-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(run())
