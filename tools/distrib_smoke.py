#!/usr/bin/env python
"""End-to-end distributed-training smoke test (``make distrib-smoke``).

Runs one small search through the full ``repro.distrib`` stack — two
rollout-worker processes, the versioned variable store, the sample
queues and the central learner — and asserts the three things a
distributed run must always deliver:

1. **progress** — the search consumes its full iteration budget, finds a
   finite best placement, and every batch came through the workers
   (``distrib.batches`` == iterations, both workers contributed);
2. **clean shutdown** — ``optimize_placement`` returns with no halt
   reason and the supervisor tears the fleet down;
3. **no orphaned processes** — ``multiprocessing.active_children()``
   drains to empty after the run (a leaked rollout worker would keep the
   interpreter — and CI — alive forever).

Exit status is non-zero on any violation.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

ITERATIONS = 6
WORKERS = 2


def main() -> int:
    from dataclasses import replace

    import numpy as np

    from repro.config import fast_profile
    from repro.core.search import optimize_placement
    from repro.sim.cluster import ClusterSpec
    from repro.telemetry import Telemetry
    from repro.workloads import get_workload

    cfg = fast_profile(seed=0, iterations=ITERATIONS)
    cfg = replace(
        cfg,
        pretrain=replace(cfg.pretrain, iterations=5),
        distrib=replace(cfg.distrib, workers=WORKERS),
    )
    tel = Telemetry(name="distrib-smoke")

    t0 = time.perf_counter()
    result = optimize_placement(
        get_workload("vgg16"), ClusterSpec.default(), "mars", cfg, telemetry=tel
    )
    wall = time.perf_counter() - t0

    failures = []
    history = result.history
    if len(history.records) != ITERATIONS:
        failures.append(
            f"ran {len(history.records)} iterations, expected {ITERATIONS}"
        )
    if history.halt_reason is not None:
        failures.append(f"unexpected halt: {history.halt_reason!r}")
    if not np.isfinite(result.final_runtime):
        failures.append(f"final runtime not finite: {result.final_runtime!r}")
    if history.best_placement is None:
        failures.append("no best placement found")

    snap = tel.metrics.snapshot()
    counters = snap["counters"]
    batches = counters.get("distrib.batches", {}).get("value", 0)
    if batches != ITERATIONS:
        failures.append(f"distrib.batches == {batches}, expected {ITERATIONS}")
    broadcasts = counters.get("distrib.weight_broadcasts", {}).get("value", 0)
    if broadcasts < 1:
        failures.append("no weight broadcast recorded")
    restarts = counters.get("distrib.worker_restarts", {}).get("value", 0)
    if restarts:
        failures.append(f"workers restarted {restarts}x during a healthy run")

    # Shutdown hygiene: every rollout worker must be joined and reaped.
    deadline = time.monotonic() + 10.0
    children = multiprocessing.active_children()
    while children and time.monotonic() < deadline:
        time.sleep(0.05)
        children = multiprocessing.active_children()
    if children:
        failures.append(
            "orphaned processes after shutdown: "
            + ", ".join(f"{c.name} (pid {c.pid})" for c in children)
        )

    if failures:
        for failure in failures:
            print(f"FAIL distrib-smoke: {failure}", file=sys.stderr)
        return 1
    print(
        f"distrib-smoke: OK ({WORKERS} workers x {ITERATIONS} iterations on "
        f"vgg16 in {wall:.1f}s, best {history.best_runtime:.4f}s, "
        "clean shutdown, no orphans)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
