.PHONY: install test lint-docs lint-defaults bench bench-smoke report-smoke serve-smoke resume-smoke distrib-smoke experiments examples clean

install:
	pip install -e .

test: lint-docs lint-defaults bench-smoke report-smoke serve-smoke resume-smoke distrib-smoke
	pytest tests/

lint-docs:
	python tools/lint_docs.py

# AST lint: no call-expression / mutable-literal defaults in any `def`
# signature under src/ (defaults are evaluated once and shared by every
# call — the annealing.py aliasing bug class).
lint-defaults:
	python tools/lint_defaults.py

bench:
	pytest benchmarks/ --benchmark-only

# Exercise the parallel evaluate_batch path on a tiny graph (no timings)
# and the incremental resume path on a real workload: proves pool ==
# serial and resume == full simulation on every `make test`
# (docs/performance.md).
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_batch_eval.py --smoke
	PYTHONPATH=src python benchmarks/bench_incremental.py --smoke
	PYTHONPATH=src python benchmarks/bench_telemetry.py --smoke
	PYTHONPATH=src python benchmarks/bench_distributed.py --smoke
	PYTHONPATH=src python benchmarks/bench_serve.py --smoke

# Tiny telemetry run -> full report with --health/--attribution -> exit 0:
# proves the report pipeline renders real run directories on every `make test`.
report-smoke:
	PYTHONPATH=src python tools/report_smoke.py

# Train a few iterations -> real SIGTERM -> resume in a fresh process ->
# compare against an uninterrupted run: proves crash-safe resume is
# bit-identical end-to-end on every `make test` (docs/architecture.md,
# "Run state & resume").
resume-smoke:
	PYTHONPATH=src python tools/resume_smoke.py

# Two-policy registry + HTTP server + 8 concurrent clients x 64 requests:
# proves cache consistency, typed overload rejection and the full serving
# stack on every `make test` (see docs/serving.md).
serve-smoke:
	PYTHONPATH=src python tools/serve_smoke.py

# Two rollout workers x six policy iterations through the full
# repro.distrib stack (variable store, sample queues, supervisor):
# proves progress, clean shutdown and zero orphaned processes on every
# `make test` (docs/architecture.md, "Distributed training").
distrib-smoke:
	PYTHONPATH=src python tools/distrib_smoke.py

experiments:
	python -m repro.experiments.runner all --cache-dir benchmarks/.mars_cache

examples:
	python examples/quickstart.py
	python examples/place_bert.py
	python examples/pretrain_and_transfer.py
	python examples/custom_workload.py
	python examples/compare_placers.py
	python examples/analyze_and_deploy.py

clean:
	rm -rf benchmarks/.mars_cache .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
