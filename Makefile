.PHONY: install test lint-docs bench experiments examples clean

install:
	pip install -e .

test: lint-docs
	pytest tests/

lint-docs:
	python tools/lint_docs.py

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.experiments.runner all --cache-dir benchmarks/.mars_cache

examples:
	python examples/quickstart.py
	python examples/place_bert.py
	python examples/pretrain_and_transfer.py
	python examples/custom_workload.py
	python examples/compare_placers.py
	python examples/analyze_and_deploy.py

clean:
	rm -rf benchmarks/.mars_cache .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
