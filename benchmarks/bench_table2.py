"""Regenerates Table 2: per-step runtime of the best placements found.

Expected shape (paper):
* Inception-V3 — every approach ties near the single-GPU optimum; the RL
  agents are not worse than GPU-Only by more than a few percent.
* GNMT-4 — GPU-Only OOMs; every RL agent beats the human-expert
  round-robin placement.
* BERT — Human Expert and GPU-Only OOM; Mars finds a valid placement
  competitive with the best baseline.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.table2 import PAPER_VALUES, render_table2, run_table2


def test_table2(benchmark, ctx):
    results = run_once(benchmark, lambda: run_table2(ctx))
    print()
    print(render_table2(results))
    print("\nPaper values for comparison:", PAPER_VALUES)

    # Feasibility structure.
    assert np.isfinite(results["inception_v3"]["GPU Only"])
    assert np.isnan(results["gnmt4"]["GPU Only"])
    assert np.isnan(results["bert"]["GPU Only"])
    assert np.isnan(results["bert"]["Human Experts"])

    # Inception: everything ties near the optimum.
    inc = results["inception_v3"]
    assert inc["Mars"] <= inc["GPU Only"] * 1.25

    # GNMT: RL beats the expert.
    gnmt = results["gnmt4"]
    assert gnmt["Mars"] < gnmt["Human Experts"]

    # BERT: Mars finds a valid placement and beats the grouper-placer.
    bert = results["bert"]
    assert np.isfinite(bert["Mars"])
    assert bert["Mars"] <= bert["Grouper-Placer"] * 1.05
