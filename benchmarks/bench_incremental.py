"""Microbenchmark: incremental vs full makespan re-evaluation.

Measures the `repro.sim.incremental` fast path (docs/performance.md) the
way refinement loops use it: anchor one placement, then re-evaluate many
single-op moves against it. Three numbers matter:

* **per-move speedup** — full ``Scheduler.run_step`` time / incremental
  ``resume_schedule`` time for the same mutated placement (bit-identical
  results are asserted before any timing is trusted);
* **hit rate** — fraction of moves the resume accepts (source-op moves
  and moves whose dirty region exceeds ``max_dirty_fraction`` fall back);
* **end-to-end A/B** — wall time of the same mutation stream through
  ``PlacementEnv.evaluate`` with the fast path on vs off (what
  ``--no-incremental`` toggles on the experiments runner).

Run it directly; results land in ``benchmarks/BENCH_incremental.json``
(the cross-PR perf trajectory — see docs/performance.md for the schema)::

    PYTHONPATH=src python benchmarks/bench_incremental.py
    PYTHONPATH=src python benchmarks/bench_incremental.py --workload gnmt --moves 400
    PYTHONPATH=src python benchmarks/bench_incremental.py --smoke

``--smoke`` shrinks the move count and skips the JSON write: it proves
the resume path end to end (``make test`` wires it in).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

import numpy as np

from repro.graph import CompGraph
from repro.sim import (
    ClusterSpec,
    CostModel,
    IncrementalEvalConfig,
    Placement,
    PlacementEnv,
    Scheduler,
    ScheduleTables,
    build_baseline,
    resume_schedule,
)

JSON_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_incremental.json")


def build_graph(workload: str) -> CompGraph:
    if workload == "inception_v3":
        from repro.workloads import build_inception_v3

        return build_inception_v3()
    if workload == "gnmt":
        from repro.workloads import build_gnmt

        return build_gnmt(scale=0.5)
    raise SystemExit(f"unknown workload {workload!r}")


def single_op_moves(anchor: np.ndarray, num_devices: int, count: int, seed: int = 0):
    """``count`` distinct single-op mutations of ``anchor``."""
    rng = np.random.default_rng(seed)
    moves = []
    for _ in range(count):
        devices = anchor.copy()
        op = int(rng.integers(0, len(anchor)))
        devices[op] = (devices[op] + 1 + rng.integers(0, num_devices - 1)) % num_devices
        moves.append(devices)
    return moves


def best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def check_identical(a, b) -> None:
    if not (
        a.makespan == b.makespan
        and np.array_equal(a.finish_times, b.finish_times)
        and np.array_equal(a.device_busy, b.device_busy)
        and a.comm_time == b.comm_time
        and a.comm_bytes == b.comm_bytes
    ):
        raise AssertionError("incremental result differs from full simulation")


def run(args) -> int:
    graph = build_graph(args.workload)
    cluster = ClusterSpec.default()
    cost_model = CostModel()
    scheduler = Scheduler(cost_model)
    op_times = cost_model.op_time_matrix(graph, cluster)
    config = IncrementalEvalConfig(max_dirty_fraction=args.max_dirty_fraction)
    tables = ScheduleTables(graph, cluster, cost_model, op_times)

    rng = np.random.default_rng(args.seed)
    anchor_env = PlacementEnv(graph, cluster)
    anchor = anchor_env.resolve(rng.integers(0, cluster.num_devices, graph.num_nodes)).devices

    build_start = time.perf_counter()
    baseline = build_baseline(tables, anchor, config)
    build_s = time.perf_counter() - build_start

    moves = single_op_moves(anchor, cluster.num_devices, args.moves, args.seed)
    print(
        f"workload={graph.name} ops={graph.num_nodes} events={baseline.total_events} "
        f"moves={len(moves)} rounds={args.rounds} "
        f"checkpoints={config.checkpoints} max_dirty={config.max_dirty_fraction}"
    )

    speedups, hits = [], 0
    full_times, inc_times = [], []
    for devices in moves:
        placement = Placement(devices, graph, cluster)
        incremental = resume_schedule(baseline, devices, config)
        full = scheduler.run_step(placement, op_times)
        if incremental is None:
            continue
        check_identical(incremental, full)
        hits += 1
        t_full = best_of(lambda: scheduler.run_step(placement, op_times), args.rounds)
        t_inc = best_of(lambda: resume_schedule(baseline, devices, config), args.rounds)
        full_times.append(t_full)
        inc_times.append(t_inc)
        speedups.append(t_full / t_inc)

    if not speedups:
        print("no incremental hits — nothing to report", file=sys.stderr)
        return 1
    hit_rate = hits / len(moves)
    median_speedup = statistics.median(speedups)
    mean_speedup = statistics.mean(speedups)
    qs = statistics.quantiles(speedups, n=10)
    print(f"{'metric':<26} {'value':>12}")
    print(f"{'hit_rate':<26} {hit_rate:>12.3f}")
    print(f"{'full_median_ms':<26} {statistics.median(full_times) * 1e3:>12.3f}")
    print(f"{'incremental_median_ms':<26} {statistics.median(inc_times) * 1e3:>12.3f}")
    print(f"{'speedup_median':<26} {median_speedup:>11.2f}x")
    print(f"{'speedup_mean':<26} {mean_speedup:>11.2f}x")
    print(f"{'speedup_p10':<26} {qs[0]:>11.2f}x")
    print(f"{'speedup_p90':<26} {qs[-1]:>11.2f}x")
    print(f"{'baseline_build_ms':<26} {build_s * 1e3:>12.3f}")

    # End-to-end A/B: the same move stream through the environment, fast
    # path on vs off (fresh envs; caches would hide the simulation cost).
    def stream(enabled: bool) -> float:
        env = PlacementEnv(
            graph,
            cluster,
            incremental=IncrementalEvalConfig(
                enabled=enabled, max_dirty_fraction=args.max_dirty_fraction
            ),
        )
        env.anchor_incremental(anchor)
        start = time.perf_counter()
        for devices in moves:
            env.evaluate(devices)
        return time.perf_counter() - start

    ab_off = best_of(lambda: stream(False), args.rounds)
    ab_on = best_of(lambda: stream(True), args.rounds)
    print(f"{'env_ab_off_s':<26} {ab_off:>12.4f}")
    print(f"{'env_ab_on_s':<26} {ab_on:>12.4f}")
    print(f"{'env_ab_speedup':<26} {ab_off / ab_on:>11.2f}x")
    print("incremental results bit-identical to full simulation: OK")

    if args.smoke:
        print(f"bench-incremental smoke OK ({hits}/{len(moves)} resumes)")
        return 0

    doc = {
        "benchmark": "incremental",
        "workload": graph.name,
        "ops": int(graph.num_nodes),
        "events": int(baseline.total_events),
        "moves": int(len(moves)),
        "rounds": int(args.rounds),
        "checkpoints": int(config.checkpoints),
        "max_dirty_fraction": float(config.max_dirty_fraction),
        "hit_rate": float(hit_rate),
        "baseline_build_s": float(build_s),
        "full_median_s": float(statistics.median(full_times)),
        "incremental_median_s": float(statistics.median(inc_times)),
        "speedup_median": float(median_speedup),
        "speedup_mean": float(mean_speedup),
        "speedup_p10": float(qs[0]),
        "speedup_p90": float(qs[-1]),
        "env_ab_off_s": float(ab_off),
        "env_ab_on_s": float(ab_on),
        "env_ab_speedup": float(ab_off / ab_on),
    }
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.json}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", choices=["inception_v3", "gnmt"], default="inception_v3")
    parser.add_argument("--moves", type=int, default=200, help="single-op mutations to time")
    parser.add_argument("--rounds", type=int, default=5, help="timing repetitions (best-of)")
    parser.add_argument("--max-dirty-fraction", type=float, default=0.75)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=JSON_PATH, help="output path for the JSON record")
    parser.add_argument("--smoke", action="store_true", help="quick correctness pass, no JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.moves = min(args.moves, 30)
        args.rounds = 1
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
