"""Seed robustness of the Mars search.

The fine ordering of Table 2's learned agents flips between seeds at the
fast profile's budgets (see EXPERIMENTS.md). This bench quantifies that
variance directly: Mars on the scaled GNMT for three seeds, reporting
mean ± std of the best placement and of the training clock.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.config import fast_profile
from repro.core import optimize_placement
from repro.experiments.common import format_table
from repro.sim import ClusterSpec, MeasurementProtocol
from repro.workloads import build_gnmt

CLUSTER = ClusterSpec.default(gpu_memory_gb=3.0)
PROTOCOL = MeasurementProtocol(bad_step_threshold=20.0)
SEEDS = (0, 1, 2)
ITERATIONS = 30


def test_seed_robustness(benchmark):
    graph = build_gnmt(scale=0.25)

    def run():
        bests, clocks = [], []
        for seed in SEEDS:
            cfg = fast_profile(seed=seed, iterations=ITERATIONS)
            res = optimize_placement(graph, CLUSTER, "mars", cfg, protocol=PROTOCOL)
            bests.append(res.history.best_runtime)
            clocks.append(res.history.sim_clock / 3600.0)
        return bests, clocks

    bests, clocks = run_once(benchmark, run)
    rows = [
        [f"seed {s}", f"{b:.4f}", f"{c:.2f}"]
        for s, b, c in zip(SEEDS, bests, clocks)
    ]
    rows.append(
        [
            "mean ± std",
            f"{np.mean(bests):.4f} ± {np.std(bests):.4f}",
            f"{np.mean(clocks):.2f} ± {np.std(clocks):.2f}",
        ]
    )
    print()
    print(format_table(["run", "best step time (s)", "training clock (h)"], rows,
                       title=f"Mars seed robustness on {graph.name} ({ITERATIONS} iterations)"))

    assert all(np.isfinite(b) for b in bests)
    # The relative spread stays bounded — searches do not diverge wildly.
    assert np.std(bests) / np.mean(bests) < 0.5
