"""Microbenchmark: batched vs sequential placement evaluation.

Times a 10-sample RL rollout (the paper's ``samples_per_policy``) through
the environment three ways on Inception-V3/GNMT-sized graphs:

* ``sequential`` — ``[env.evaluate(a) for a in batch]`` (the old hot path),
* ``batch/serial`` — ``evaluate_batch`` with the deterministic serial
  fallback (measures the dedupe-only win),
* ``batch/pool`` — ``evaluate_batch`` over the process pool.

Every mode is verified to produce bit-identical results before timings
are reported. Run it directly::

    PYTHONPATH=src python benchmarks/bench_batch_eval.py
    PYTHONPATH=src python benchmarks/bench_batch_eval.py --workload gnmt --workers 8
    PYTHONPATH=src python benchmarks/bench_batch_eval.py --smoke   # make bench-smoke

``--smoke`` builds a tiny graph and forces a 2-worker pool: no timing
assertions, it just proves the pool path works end to end (it is wired
into ``make test`` for exactly that purpose).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

import numpy as np

from repro.graph import CompGraph, OpNode
from repro.sim import BatchEvalConfig, ClusterSpec, PlacementEnv

JSON_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_batch_eval.json")


def build_graph(workload: str) -> CompGraph:
    if workload == "inception_v3":
        from repro.workloads import build_inception_v3

        return build_inception_v3()
    if workload == "gnmt":
        from repro.workloads import build_gnmt

        return build_gnmt(scale=0.5)
    if workload == "tiny":
        return tiny_layered_graph()
    raise SystemExit(f"unknown workload {workload!r}")


def tiny_layered_graph(layers: int = 8, width: int = 4) -> CompGraph:
    """A small layered DAG — enough structure to exercise the scheduler."""
    g = CompGraph("tiny-layered")
    g.add_node(OpNode("in", "Input", (4, 8), cpu_only=True))
    prev = ["in"]
    for layer in range(layers):
        names = []
        for j in range(width):
            name = f"l{layer}/op{j}"
            g.add_node(
                OpNode(name, "MatMul", (4, 32), flops=1e7, param_bytes=4096),
                inputs=prev if j == 0 else [prev[0], f"l{layer}/op{j - 1}"],
            )
            names.append(name)
        prev = names
    g.add_node(OpNode("loss", "CrossEntropy", (1,), flops=128), inputs=prev)
    return g


def sample_batches(graph, cluster, batches: int, samples: int, seed: int = 0):
    """``batches`` rollouts of ``samples`` random placements, with one
    in-batch duplicate each (policies re-propose placements all the time —
    the dedupe path is part of what we are measuring)."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(batches):
        batch = [
            rng.integers(0, cluster.num_devices, graph.num_nodes)
            for _ in range(max(1, samples - 1))
        ]
        batch.append(batch[0].copy())
        out.append(batch)
    return out


def time_mode(env_factory, eval_fn, batches, rounds: int):
    """Best-of-``rounds`` seconds to evaluate all ``batches`` on a fresh env."""
    times, reference = [], None
    for _ in range(rounds):
        env = env_factory()
        start = time.perf_counter()
        results = [eval_fn(env, batch) for batch in batches]
        times.append(time.perf_counter() - start)
        flat = [r.per_step_time for rs in results for r in rs]
        if reference is None:
            reference = flat
        elif flat != reference:
            raise AssertionError("non-deterministic evaluation across rounds")
        env.close_pool()
    return min(times), statistics.median(times), reference


def run_benchmark(args) -> int:
    graph = build_graph(args.workload)
    cluster = ClusterSpec.default()
    batches = sample_batches(graph, cluster, args.batches, args.samples)
    print(
        f"workload={graph.name} ops={graph.num_nodes} "
        f"batches={args.batches} samples/batch={args.samples} workers={args.workers}"
    )

    def sequential(env, batch):
        return [env.evaluate(a) for a in batch]

    def batched(env, batch):
        return env.evaluate_batch(batch)

    pool_cfg = BatchEvalConfig(
        mode="process", max_workers=args.workers, min_parallel=1, min_ops_parallel=0
    )
    modes = [
        ("sequential", lambda: PlacementEnv(graph, cluster), sequential),
        ("batch/serial", lambda: PlacementEnv(graph, cluster, batch=BatchEvalConfig(mode="serial")), batched),
        ("batch/pool", lambda: PlacementEnv(graph, cluster, batch=pool_cfg), batched),
    ]

    rows, baseline, reference = [], None, None
    for name, factory, fn in modes:
        best, median, flat = time_mode(factory, fn, batches, args.rounds)
        if reference is None:
            reference = flat
        elif flat != reference:
            raise AssertionError(f"{name} results differ from sequential")
        baseline = baseline or best
        rows.append((name, best, median, baseline / best))
    print(f"{'mode':<14} {'best_s':>10} {'median_s':>10} {'speedup':>8}")
    for name, best, median, speedup in rows:
        print(f"{name:<14} {best:>10.4f} {median:>10.4f} {speedup:>7.2f}x")
    print("all modes bit-identical: OK")
    # Machine-readable record alongside the table — the cross-PR perf
    # trajectory (docs/performance.md, "Reading BENCH_*.json").
    doc = {
        "benchmark": "batch_eval",
        "workload": graph.name,
        "ops": int(graph.num_nodes),
        "batches": int(args.batches),
        "samples_per_batch": int(args.samples),
        "rounds": int(args.rounds),
        "workers": int(args.workers),
        "modes": {
            name: {
                "best_s": float(best),
                "median_s": float(median),
                "speedup": float(speedup),
            }
            for name, best, median, speedup in rows
        },
    }
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.json}")
    return 0


def run_smoke() -> int:
    """Exercise the pool path end to end on a tiny graph (no timings)."""
    graph = tiny_layered_graph()
    cluster = ClusterSpec.default()
    batches = sample_batches(graph, cluster, batches=2, samples=6)
    serial_env = PlacementEnv(graph, cluster, batch=BatchEvalConfig(mode="serial"))
    pool_env = PlacementEnv(
        graph,
        cluster,
        batch=BatchEvalConfig(mode="process", max_workers=2, min_parallel=1, min_ops_parallel=0),
    )
    try:
        for batch in batches:
            serial = serial_env.evaluate_batch(batch)
            pooled = pool_env.evaluate_batch(batch)
            if serial != pooled:
                print("bench-smoke FAILED: pool results differ from serial", file=sys.stderr)
                return 1
        if serial_env.stats != pool_env.stats:
            print("bench-smoke FAILED: stats diverged", file=sys.stderr)
            return 1
    finally:
        pool_env.close_pool()
    print(
        f"bench-smoke OK: {graph.num_nodes}-op graph, "
        f"{sum(len(b) for b in batches)} evaluations, pool == serial"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", choices=["inception_v3", "gnmt", "tiny"], default="inception_v3")
    parser.add_argument("--batches", type=int, default=20, help="rollouts per round")
    parser.add_argument("--samples", type=int, default=10, help="placements per rollout")
    parser.add_argument("--rounds", type=int, default=3, help="timing repetitions (best-of)")
    parser.add_argument("--workers", type=int, default=None, help="pool size (default: cpu-aware)")
    parser.add_argument("--json", default=JSON_PATH, help="output path for the JSON record")
    parser.add_argument("--smoke", action="store_true", help="tiny graph, 2-worker pool, no timings")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    if args.workers is None:
        args.workers = BatchEvalConfig().resolved_workers()
    return run_benchmark(args)


if __name__ == "__main__":
    sys.exit(main())
