"""Regenerates Fig. 8: agent training time (hours) per approach.

Expected shape (paper): the encoder-placer is the slowest to train on the
big workloads (it wastes measurement time on bad placements); Mars's total
training time is competitive with the grouper-placer. The paper also
reports a ~13.2% average saving from pre-training; our substrate shows a
weaker, seed-dependent effect (see EXPERIMENTS.md).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig8 import render_fig8, run_fig8


def test_fig8(benchmark, ctx):
    hours = run_once(benchmark, lambda: run_fig8(ctx))
    print()
    print(render_fig8(hours))

    for wl, row in hours.items():
        assert all(h > 0 for h in row.values()), wl

    # On GNMT the encoder-placer trains slowest (paper Fig. 8 shape).
    gnmt = hours["gnmt4"]
    assert gnmt["Encoder-Placer"] >= gnmt["Mars"]
