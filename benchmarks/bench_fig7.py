"""Regenerates Fig. 7: per-step runtime of placements during training.

Expected shape (paper): every curve trends downward; on GNMT-4 the
encoder-placer's early placements are far worse than Mars's, and Mars
ends at or below the rivals' final level.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig7 import convergence_summary, render_fig7, run_fig7


def test_fig7(benchmark, ctx):
    curves = run_once(benchmark, lambda: run_fig7(ctx))
    print()
    print(render_fig7(curves))
    print()
    print(convergence_summary(curves))

    for wl, agents in curves.items():
        for title, (xs, ys) in agents.items():
            assert len(xs) == len(ys) and len(ys) >= 2, (wl, title)
            # Downward trend: the best late placement beats the first one.
            assert min(ys[len(ys) // 2 :]) <= ys[0], (wl, title)

    # GNMT: Mars's early placements are better than the encoder-placer's
    # (the paper's Fig. 7b observation).
    gnmt = curves["gnmt4"]
    mars_first = gnmt["Mars"][1][0]
    gdp_first = gnmt["Encoder-Placer"][1][0]
    assert mars_first < gdp_first
