"""Microbenchmark: span-tracing overhead on the evaluation hot paths.

Measures what `repro.telemetry.tracing` costs where it matters — the
incremental `PlacementEnv.evaluate` stream (a refinement loop's inner
loop) and `PlacementEnv.evaluate_batch` — with tracing **off** (no active
trace: every `span()` call returns the shared no-op) vs **on** (a live
root span, so each evaluation emits one schema-versioned ``span`` event
into a file-backed run directory).

Both arms run against a file-backed telemetry session with sample events
enabled, so the *only* delta between them is the tracing machinery
itself: span object + two clock reads + one extra JSONL event per
evaluation. The budget is **<3% median overhead** on the incremental
evaluate path (docs/performance.md).

Run it directly; results land in ``benchmarks/BENCH_telemetry.json``::

    PYTHONPATH=src python benchmarks/bench_telemetry.py
    PYTHONPATH=src python benchmarks/bench_telemetry.py --smoke

``--smoke`` shrinks the stream and skips the JSON write (``make test``
wires it in).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time

import numpy as np

from repro.sim import ClusterSpec, IncrementalEvalConfig, PlacementEnv
from repro.telemetry import read_events, start_run
from repro.telemetry.tracing import span

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_telemetry.json"
)


def build_graph(workload: str):
    if workload == "inception_v3":
        from repro.workloads import build_inception_v3

        return build_inception_v3()
    if workload == "gnmt":
        from repro.workloads import build_gnmt

        return build_gnmt(scale=0.5)
    raise SystemExit(f"unknown workload {workload!r}")


def single_op_moves(anchor: np.ndarray, num_devices: int, count: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    moves = []
    for _ in range(count):
        devices = anchor.copy()
        op = int(rng.integers(0, len(anchor)))
        devices[op] = (devices[op] + 1 + rng.integers(0, num_devices - 1)) % num_devices
        moves.append(devices)
    return moves


def run(args) -> int:
    graph = build_graph(args.workload)
    cluster = ClusterSpec.default()
    rng = np.random.default_rng(args.seed)
    anchor_env = PlacementEnv(graph, cluster)
    anchor = anchor_env.resolve(
        rng.integers(0, cluster.num_devices, graph.num_nodes)
    ).devices
    moves = single_op_moves(anchor, cluster.num_devices, args.moves, args.seed)
    batches = [moves[i : i + args.batch] for i in range(0, len(moves), args.batch)]

    with tempfile.TemporaryDirectory() as tmp:
        tel = start_run("bench-telemetry", tmp)
        try:

            def eval_stream(traced: bool) -> float:
                # Fresh env per round: the LRU result cache would otherwise
                # absorb every repeat and we'd time dict lookups.
                env = PlacementEnv(
                    graph, cluster, telemetry=tel, incremental=IncrementalEvalConfig()
                )
                env.anchor_incremental(anchor)
                if traced:
                    with span("bench.root", telemetry=tel, new_trace=True):
                        start = time.perf_counter()
                        for devices in moves:
                            env.evaluate(devices)
                        return time.perf_counter() - start
                start = time.perf_counter()
                for devices in moves:
                    env.evaluate(devices)
                return time.perf_counter() - start

            def batch_stream(traced: bool) -> float:
                env = PlacementEnv(graph, cluster, telemetry=tel)
                if traced:
                    with span("bench.root", telemetry=tel, new_trace=True):
                        start = time.perf_counter()
                        for batch in batches:
                            env.evaluate_batch(batch)
                        return time.perf_counter() - start
                start = time.perf_counter()
                for batch in batches:
                    env.evaluate_batch(batch)
                return time.perf_counter() - start

            # Warm-up (JIT-free, but page in code paths and the event log).
            eval_stream(False)
            eval_stream(True)

            # Interleave the arms so drift (thermal, page cache) hits both.
            eval_off, eval_on, batch_off, batch_on = [], [], [], []
            for _ in range(args.rounds):
                eval_off.append(eval_stream(False))
                eval_on.append(eval_stream(True))
                batch_off.append(batch_stream(False))
                batch_on.append(batch_stream(True))

            spans_written = sum(
                1 for e in read_events(tel.run_dir, types=("span",))
            )
        finally:
            tel.close()

    n = len(moves)
    eval_off_med = statistics.median(eval_off)
    eval_on_med = statistics.median(eval_on)
    batch_off_med = statistics.median(batch_off)
    batch_on_med = statistics.median(batch_on)
    eval_overhead = eval_on_med / eval_off_med - 1.0
    batch_overhead = batch_on_med / batch_off_med - 1.0

    print(
        f"workload={graph.name} ops={graph.num_nodes} moves={n} "
        f"batch={args.batch} rounds={args.rounds} span_events={spans_written}"
    )
    print(f"{'metric':<28} {'value':>12}")
    print(f"{'evaluate_off_us_per_eval':<28} {eval_off_med / n * 1e6:>12.2f}")
    print(f"{'evaluate_on_us_per_eval':<28} {eval_on_med / n * 1e6:>12.2f}")
    print(f"{'evaluate_overhead':<28} {eval_overhead * 100:>11.2f}%")
    print(f"{'batch_off_us_per_eval':<28} {batch_off_med / n * 1e6:>12.2f}")
    print(f"{'batch_on_us_per_eval':<28} {batch_on_med / n * 1e6:>12.2f}")
    print(f"{'batch_overhead':<28} {batch_overhead * 100:>11.2f}%")
    budget_ok = eval_overhead < 0.03
    print(
        f"tracing overhead budget (<3% on incremental evaluate): "
        f"{'OK' if budget_ok else 'EXCEEDED'}"
    )
    if spans_written == 0:
        print("no span events written — tracing never activated", file=sys.stderr)
        return 1

    if args.smoke:
        print(f"bench-telemetry smoke OK ({spans_written} spans)")
        return 0

    doc = {
        "benchmark": "telemetry",
        "workload": graph.name,
        "ops": int(graph.num_nodes),
        "moves": int(n),
        "batch": int(args.batch),
        "rounds": int(args.rounds),
        "span_events": int(spans_written),
        "evaluate_off_median_s": float(eval_off_med),
        "evaluate_on_median_s": float(eval_on_med),
        "evaluate_overhead_frac": float(eval_overhead),
        "batch_off_median_s": float(batch_off_med),
        "batch_on_median_s": float(batch_on_med),
        "batch_overhead_frac": float(batch_overhead),
        "budget_frac": 0.03,
        "budget_ok": bool(budget_ok),
    }
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.json}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workload", choices=["inception_v3", "gnmt"], default="inception_v3"
    )
    parser.add_argument("--moves", type=int, default=300, help="evaluations per round")
    parser.add_argument("--batch", type=int, default=10, help="evaluate_batch size")
    parser.add_argument("--rounds", type=int, default=7, help="timed repetitions")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=JSON_PATH, help="output path for the JSON record")
    parser.add_argument("--smoke", action="store_true", help="quick pass, no JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.moves = min(args.moves, 40)
        args.rounds = 1
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
