"""Micro-benchmarks of the library's hot paths.

These are genuine pytest-benchmark timings (many rounds) of the kernels
the RL loop spends its time in: the event-driven scheduler, environment
evaluation, the placer forward/backward, the GCN encoder, and one DGI
pre-training step.
"""

import numpy as np
import pytest

from repro.config import fast_profile
from repro.core import build_mars_agent
from repro.gnn import DGI, GCNEncoder
from repro.graph import FeatureExtractor, normalized_adjacency
from repro.nn import Adam, BiLSTM, Tensor
from repro.sim import ClusterSpec, PlacementEnv
from repro.workloads import build_gnmt, build_inception_v3

CLUSTER = ClusterSpec.default()


@pytest.fixture(scope="module")
def gnmt():
    return build_gnmt(scale=0.5)


@pytest.fixture(scope="module")
def inception():
    return build_inception_v3()


def test_scheduler_step_gnmt(benchmark, gnmt):
    """One makespan simulation of a 4-way GNMT placement (~350 ops)."""
    env = PlacementEnv(gnmt, CLUSTER)
    rng = np.random.default_rng(0)
    placement = env.resolve(rng.integers(0, 4, gnmt.num_nodes))
    result = benchmark(lambda: env.makespan(placement))
    assert result > 0


def test_env_evaluate_fresh_placements(benchmark, inception):
    """Full environment evaluation incl. memory check and measurement."""
    env = PlacementEnv(inception, CLUSTER)
    rng = np.random.default_rng(0)
    placements = [rng.integers(0, 5, inception.num_nodes) for _ in range(512)]
    counter = iter(range(len(placements)))

    def evaluate():
        return env.evaluate(placements[next(counter) % len(placements)])

    result = benchmark.pedantic(evaluate, rounds=64, iterations=1)
    assert result.per_step_time > 0


def test_gcn_encoder_forward(benchmark, inception):
    fx = FeatureExtractor()
    x = fx(inception)
    adj = normalized_adjacency(inception)
    enc = GCNEncoder(fx.dim, hidden_dim=48, num_layers=3, rng=0)
    out = benchmark(lambda: enc(x, adj))
    assert out.shape == (inception.num_nodes, 48)


def test_dgi_pretrain_step(benchmark, inception):
    fx = FeatureExtractor()
    x = fx(inception)
    adj = normalized_adjacency(inception)
    enc = GCNEncoder(fx.dim, hidden_dim=48, num_layers=3, rng=0)
    dgi = DGI(enc, rng=1)
    opt = Adam(dgi.parameters(), lr=1e-3)
    rng = np.random.default_rng(2)

    def step():
        opt.zero_grad()
        loss = dgi.loss(x, adj, rng)
        loss.backward()
        opt.step()
        return loss.item()

    assert benchmark(step) > 0


def test_bilstm_forward_backward(benchmark):
    lstm = BiLSTM(48, 48, rng=0)
    x = Tensor(np.random.default_rng(0).standard_normal((128, 1, 48)), requires_grad=True)

    def fwd_bwd():
        out, _ = lstm(x)
        (out * out).mean().backward()
        lstm.zero_grad()
        return out.shape

    assert benchmark(fwd_bwd) == (128, 1, 48)


def test_mars_agent_sampling(benchmark, gnmt):
    """Sampling 10 placements from the policy (the rollout hot path)."""
    cfg = fast_profile(seed=0)
    agent = build_mars_agent(gnmt, CLUSTER, cfg)
    rng = np.random.default_rng(0)
    rollout = benchmark.pedantic(
        lambda: agent.sample(10, rng), rounds=5, iterations=1, warmup_rounds=1
    )
    assert rollout.placements.shape == (10, gnmt.num_nodes)


def test_mars_agent_ppo_pass(benchmark, gnmt):
    """One PPO evaluate+backward pass over a 5-sample minibatch."""
    cfg = fast_profile(seed=0)
    agent = build_mars_agent(gnmt, CLUSTER, cfg)
    rollout = agent.sample(5, np.random.default_rng(0))

    def update_pass():
        agent.zero_grad()
        logp, ent = agent.evaluate(rollout.internal)
        loss = -(logp.mean()) - 1e-3 * ent.mean()
        loss.backward()
        return loss.item()

    assert np.isfinite(benchmark.pedantic(update_pass, rounds=5, iterations=1, warmup_rounds=1))
