"""Benchmarks for the placement service (``repro.serve``).

Times the three request paths a deployment actually sees — cache hit,
greedy miss (one argmax decode + one simulation) and refined miss
(greedy + ``budget`` sampled candidates through ``evaluate_batch``) —
plus a **duplicate-heavy open-loop load test**: thundering herds of
identical requests fired on a fixed arrival schedule (open loop — the
load does not wait for responses) against the full queue + worker
stack, with single-flight coalescing on vs off at the same offered
load. The coalescing row in ``BENCH_serve.json`` backs the ≥2× p99
claim in docs/serving.md §4. Two entry points:

* ``pytest benchmarks/bench_serve.py --benchmark-only`` — the
  pytest-benchmark harness (calibrated statistics, nice terminal table);
* ``PYTHONPATH=src python benchmarks/bench_serve.py`` — a standalone
  runner that times the same paths with ``time.perf_counter`` and writes
  ``benchmarks/BENCH_serve.json``, the machine-readable record the
  cross-PR perf trajectory accumulates (docs/performance.md).
  ``--smoke`` runs a shrunken herd comparison with correctness asserts
  and no JSON write (wired into ``make bench-smoke``).
"""

import json
import os
import statistics
import sys
import tempfile
import threading
import time

import pytest

JSON_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_serve.json")

from repro.config import fast_profile
from repro.core import save_agent
from repro.core.search import build_agent
from repro.graph import CompGraph, OpNode, graph_to_dict
from repro.serve import (
    PlacementRequest,
    PlacementService,
    PolicyRegistry,
    RequestQueue,
    ServeConfig,
    ServiceOverloaded,
)
from repro.sim import ClusterSpec
from repro.workloads import build_vgg16

CLUSTER = ClusterSpec.default()


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    ckpt_dir = tmp_path_factory.mktemp("serve-bench")
    graph = build_vgg16(scale=0.25, batch_size=4)
    cfg = fast_profile(seed=0)
    agent, _ = build_agent("mars_no_pretrain", graph, CLUSTER, cfg, None)
    save_agent(str(ckpt_dir / "mars__vgg"), agent, "mars", workload=graph.name, config=cfg)
    svc = PlacementService(PolicyRegistry(str(ckpt_dir)), config=ServeConfig())
    # Warm the agent/env caches so the benchmarks time steady state.
    svc.handle(PlacementRequest(graph=graph_to_dict(graph)))
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def graph_doc():
    return graph_to_dict(build_vgg16(scale=0.25, batch_size=4))


def test_serve_cache_hit(benchmark, service, graph_doc):
    """The steady-state path for repeated graphs: a dictionary lookup."""
    response = benchmark(
        lambda: service.handle(PlacementRequest(graph=graph_doc))
    )
    assert response.cache == "hit"


def test_serve_greedy_miss(benchmark, service, graph_doc):
    """Uncached greedy request: fingerprint + decode + one simulation."""
    response = benchmark(
        lambda: service.handle(PlacementRequest(graph=graph_doc, use_cache=False))
    )
    assert response.cache == "miss"
    assert response.candidates_evaluated == 1


def test_serve_refined_miss(benchmark, service, graph_doc):
    """Uncached request with an 8-candidate refinement budget."""
    response = benchmark(
        lambda: service.handle(
            PlacementRequest(graph=graph_doc, budget=8, use_cache=False)
        )
    )
    assert response.candidates_evaluated == 9


def test_fingerprint_only(benchmark, graph_doc):
    """The hash itself, for scale context (dominates tiny cache hits)."""
    from repro.graph import graph_from_dict

    graph = graph_from_dict(graph_doc)
    fp = benchmark(graph.fingerprint)
    assert len(fp) == 64


# ----------------------------------------------------------------------
# Standalone runner: same paths, plain perf_counter, JSON output
# ----------------------------------------------------------------------
def _time_path(fn, rounds: int):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {"best_s": float(min(times)), "median_s": float(statistics.median(times))}


# ----------------------------------------------------------------------
# Duplicate-heavy open-loop load test (single-flight coalescing A/B)
# ----------------------------------------------------------------------
def _dup_graph(index: int, length: int):
    """Small distinct chain graphs — the duplicate-heavy request mix."""
    g = CompGraph(f"dup{index}")
    g.add_node(OpNode("in", "Input", (4, 8), cpu_only=True))
    prev = "in"
    for i in range(length):
        node = f"op{i}"
        g.add_node(
            OpNode(node, "MatMul", (4, 16), flops=1e6, param_bytes=256),
            inputs=[prev],
        )
        prev = node
    g.add_node(OpNode("loss", "CrossEntropy", (1,), flops=64), inputs=[prev])
    return g


def _percentile(values, pct: float) -> float:
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1)))))
    return float(ordered[rank])


def _run_herd_mode(registry, docs, *, coalesce, waves, herd, interval_s, ttl, budget, workers):
    """Fire ``waves`` herds of ``herd`` identical requests on a fixed
    open-loop schedule (arrivals never wait for responses) and measure
    client-perceived latency. ``ttl`` is shorter than a key's revisit
    interval, so every wave starts cold — the thundering-herd scenario
    coalescing exists for."""
    config = ServeConfig(
        workers=workers, max_queue=4096, max_batch=4, cache_ttl=ttl, coalesce=coalesce
    )
    service = PlacementService(registry, config=config)
    queue = RequestQueue(service)
    lock = threading.Lock()
    latencies, states = [], []
    rejected = 0
    expected = 0
    try:
        for doc in docs:  # build agents/envs outside the timed window
            queue.submit_and_wait(PlacementRequest(graph=doc, budget=budget), timeout=120.0)
        time.sleep(ttl * 2)  # let the warmup entries expire

        def record(future, arrival):
            latency_ms = (time.perf_counter() - arrival) * 1e3
            with lock:
                try:
                    response = future.result()
                except Exception:
                    states.append("error")
                else:
                    latencies.append(latency_ms)
                    states.append(response.cache)

        t0 = time.perf_counter()
        for wave in range(waves):
            delay = t0 + wave * interval_s - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            doc = docs[wave % len(docs)]
            for _ in range(herd):
                arrival = time.perf_counter()
                try:
                    future = queue.submit(PlacementRequest(graph=doc, budget=budget))
                except ServiceOverloaded:
                    rejected += 1
                    continue
                expected += 1
                future.add_done_callback(
                    lambda f, arrival=arrival: record(f, arrival)
                )
        deadline = time.perf_counter() + 120.0
        while time.perf_counter() < deadline:
            with lock:
                if len(states) == expected:
                    break
            time.sleep(0.01)
        else:
            raise RuntimeError("herd requests never drained")
    finally:
        queue.shutdown()
        service.close()
    if not latencies:
        raise RuntimeError("no successful herd responses recorded")
    return {
        "coalesce": bool(coalesce),
        "requests": int(expected),
        "rejected": int(rejected),
        "errors": int(states.count("error")),
        "computes": int(states.count("miss")),
        "coalesced": int(states.count("coalesced")),
        "hits": int(states.count("hit")),
        "p50_ms": _percentile(latencies, 50),
        "p99_ms": _percentile(latencies, 99),
        "mean_ms": float(statistics.fmean(latencies)),
    }


def run_duplicate_heavy(smoke: bool = False):
    """A/B the duplicate-heavy herd load with coalescing off vs on at
    the same offered load. Returns the BENCH_serve.json row."""
    if smoke:
        params = dict(waves=6, herd=12, interval_s=0.06, ttl=0.03, budget=8, workers=2)
        lengths = (5, 6)
    else:
        params = dict(waves=24, herd=24, interval_s=0.08, ttl=0.05, budget=16, workers=6)
        lengths = (6, 7)
    docs = [graph_to_dict(_dup_graph(i, n)) for i, n in enumerate(lengths)]

    cfg = fast_profile(seed=0)
    anchor = _dup_graph(0, lengths[0])
    with tempfile.TemporaryDirectory(prefix="serve-herd-") as ckpt_dir:
        agent, _ = build_agent("mars_no_pretrain", anchor, CLUSTER, cfg, None)
        save_agent(
            os.path.join(ckpt_dir, "mars__dup"), agent, "mars",
            workload=anchor.name, config=cfg,
        )
        registry = PolicyRegistry(ckpt_dir)  # shared: agents load once
        off = _run_herd_mode(registry, docs, coalesce=False, **params)
        on = _run_herd_mode(registry, docs, coalesce=True, **params)

    improvement = off["p99_ms"] / on["p99_ms"] if on["p99_ms"] > 0 else float("inf")
    print(f"\nduplicate-heavy open-loop load "
          f"({params['waves']} waves x {params['herd']} dup requests, "
          f"{params['interval_s'] * 1e3:.0f} ms interval, budget={params['budget']})")
    print(f"{'mode':<14} {'computes':>9} {'coalesced':>10} {'hits':>6} "
          f"{'p50_ms':>9} {'p99_ms':>9}")
    for row in (off, on):
        mode = "coalesce_on" if row["coalesce"] else "coalesce_off"
        print(f"{mode:<14} {row['computes']:>9} {row['coalesced']:>10} "
              f"{row['hits']:>6} {row['p50_ms']:>9.2f} {row['p99_ms']:>9.2f}")
    print(f"p99 improvement: {improvement:.2f}x")

    for row in (off, on):
        assert row["errors"] == 0, f"herd requests failed: {row}"
        assert row["rejected"] == 0, f"herd requests rejected: {row}"
    assert on["computes"] < off["computes"], (
        f"coalescing did not reduce computes: {on['computes']} vs {off['computes']}"
    )
    assert on["coalesced"] > 0, "no request ever coalesced"
    if not smoke:
        assert improvement >= 2.0, (
            f"p99 improvement {improvement:.2f}x below the 2x acceptance bar"
        )
    return {
        "herd": int(params["herd"]),
        "waves": int(params["waves"]),
        "interval_ms": float(params["interval_s"] * 1e3),
        "budget": int(params["budget"]),
        "workers": int(params["workers"]),
        "cache_ttl_s": float(params["ttl"]),
        "coalesce_off": off,
        "coalesce_on": on,
        "p99_improvement": float(improvement),
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=20, help="timing repetitions per path")
    parser.add_argument("--budget", type=int, default=8, help="refinement budget for the refined path")
    parser.add_argument("--json", default=JSON_PATH, help="output path for the JSON record")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick correctness pass of the herd comparison, no JSON",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        run_duplicate_heavy(smoke=True)
        print("serve bench smoke OK")
        return 0

    graph = build_vgg16(scale=0.25, batch_size=4)
    graph_doc = graph_to_dict(graph)
    cfg = fast_profile(seed=0)
    with tempfile.TemporaryDirectory(prefix="serve-bench-") as ckpt_dir:
        agent, _ = build_agent("mars_no_pretrain", graph, CLUSTER, cfg, None)
        save_agent(
            os.path.join(ckpt_dir, "mars__vgg"), agent, "mars",
            workload=graph.name, config=cfg,
        )
        svc = PlacementService(PolicyRegistry(ckpt_dir), config=ServeConfig())
        try:
            # Warm the agent/env caches so timings see steady state.
            svc.handle(PlacementRequest(graph=graph_doc))
            paths = {
                "cache_hit": lambda: svc.handle(PlacementRequest(graph=graph_doc)),
                "greedy_miss": lambda: svc.handle(
                    PlacementRequest(graph=graph_doc, use_cache=False)
                ),
                "refined_miss": lambda: svc.handle(
                    PlacementRequest(graph=graph_doc, budget=args.budget, use_cache=False)
                ),
            }
            results = {name: _time_path(fn, args.rounds) for name, fn in paths.items()}
        finally:
            svc.close()
    print(f"{'path':<14} {'best_ms':>10} {'median_ms':>10}")
    for name, row in results.items():
        print(f"{name:<14} {row['best_s'] * 1e3:>10.3f} {row['median_s'] * 1e3:>10.3f}")
    duplicate_heavy = run_duplicate_heavy(smoke=False)
    doc = {
        "benchmark": "serve",
        "workload": graph.name,
        "ops": int(graph.num_nodes),
        "rounds": int(args.rounds),
        "budget": int(args.budget),
        "paths": results,
        "duplicate_heavy": duplicate_heavy,
    }
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
