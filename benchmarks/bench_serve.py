"""Benchmarks for the placement service (``repro.serve``).

Times the three request paths a deployment actually sees — cache hit,
greedy miss (one argmax decode + one simulation) and refined miss
(greedy + ``budget`` sampled candidates through ``evaluate_batch``) —
so the serving docs' latency claims stay honest. Two entry points:

* ``pytest benchmarks/bench_serve.py --benchmark-only`` — the
  pytest-benchmark harness (calibrated statistics, nice terminal table);
* ``PYTHONPATH=src python benchmarks/bench_serve.py`` — a standalone
  runner that times the same paths with ``time.perf_counter`` and writes
  ``benchmarks/BENCH_serve.json``, the machine-readable record the
  cross-PR perf trajectory accumulates (docs/performance.md).
"""

import json
import os
import statistics
import sys
import tempfile
import time

import pytest

JSON_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_serve.json")

from repro.config import fast_profile
from repro.core import save_agent
from repro.core.search import build_agent
from repro.graph import graph_to_dict
from repro.serve import (
    PlacementRequest,
    PlacementService,
    PolicyRegistry,
    ServeConfig,
)
from repro.sim import ClusterSpec
from repro.workloads import build_vgg16

CLUSTER = ClusterSpec.default()


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    ckpt_dir = tmp_path_factory.mktemp("serve-bench")
    graph = build_vgg16(scale=0.25, batch_size=4)
    cfg = fast_profile(seed=0)
    agent, _ = build_agent("mars_no_pretrain", graph, CLUSTER, cfg, None)
    save_agent(str(ckpt_dir / "mars__vgg"), agent, "mars", workload=graph.name, config=cfg)
    svc = PlacementService(PolicyRegistry(str(ckpt_dir)), config=ServeConfig())
    # Warm the agent/env caches so the benchmarks time steady state.
    svc.handle(PlacementRequest(graph=graph_to_dict(graph)))
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def graph_doc():
    return graph_to_dict(build_vgg16(scale=0.25, batch_size=4))


def test_serve_cache_hit(benchmark, service, graph_doc):
    """The steady-state path for repeated graphs: a dictionary lookup."""
    response = benchmark(
        lambda: service.handle(PlacementRequest(graph=graph_doc))
    )
    assert response.cache == "hit"


def test_serve_greedy_miss(benchmark, service, graph_doc):
    """Uncached greedy request: fingerprint + decode + one simulation."""
    response = benchmark(
        lambda: service.handle(PlacementRequest(graph=graph_doc, use_cache=False))
    )
    assert response.cache == "miss"
    assert response.candidates_evaluated == 1


def test_serve_refined_miss(benchmark, service, graph_doc):
    """Uncached request with an 8-candidate refinement budget."""
    response = benchmark(
        lambda: service.handle(
            PlacementRequest(graph=graph_doc, budget=8, use_cache=False)
        )
    )
    assert response.candidates_evaluated == 9


def test_fingerprint_only(benchmark, graph_doc):
    """The hash itself, for scale context (dominates tiny cache hits)."""
    from repro.graph import graph_from_dict

    graph = graph_from_dict(graph_doc)
    fp = benchmark(graph.fingerprint)
    assert len(fp) == 64


# ----------------------------------------------------------------------
# Standalone runner: same paths, plain perf_counter, JSON output
# ----------------------------------------------------------------------
def _time_path(fn, rounds: int):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {"best_s": float(min(times)), "median_s": float(statistics.median(times))}


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=20, help="timing repetitions per path")
    parser.add_argument("--budget", type=int, default=8, help="refinement budget for the refined path")
    parser.add_argument("--json", default=JSON_PATH, help="output path for the JSON record")
    args = parser.parse_args(argv)

    graph = build_vgg16(scale=0.25, batch_size=4)
    graph_doc = graph_to_dict(graph)
    cfg = fast_profile(seed=0)
    with tempfile.TemporaryDirectory(prefix="serve-bench-") as ckpt_dir:
        agent, _ = build_agent("mars_no_pretrain", graph, CLUSTER, cfg, None)
        save_agent(
            os.path.join(ckpt_dir, "mars__vgg"), agent, "mars",
            workload=graph.name, config=cfg,
        )
        svc = PlacementService(PolicyRegistry(ckpt_dir), config=ServeConfig())
        try:
            # Warm the agent/env caches so timings see steady state.
            svc.handle(PlacementRequest(graph=graph_doc))
            paths = {
                "cache_hit": lambda: svc.handle(PlacementRequest(graph=graph_doc)),
                "greedy_miss": lambda: svc.handle(
                    PlacementRequest(graph=graph_doc, use_cache=False)
                ),
                "refined_miss": lambda: svc.handle(
                    PlacementRequest(graph=graph_doc, budget=args.budget, use_cache=False)
                ),
            }
            results = {name: _time_path(fn, args.rounds) for name, fn in paths.items()}
        finally:
            svc.close()
    print(f"{'path':<14} {'best_ms':>10} {'median_ms':>10}")
    for name, row in results.items():
        print(f"{name:<14} {row['best_s'] * 1e3:>10.3f} {row['median_s'] * 1e3:>10.3f}")
    doc = {
        "benchmark": "serve",
        "workload": graph.name,
        "ops": int(graph.num_nodes),
        "rounds": int(args.rounds),
        "budget": int(args.budget),
        "paths": results,
    }
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
