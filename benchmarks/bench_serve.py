"""Benchmarks for the placement service (``repro.serve``).

Times the three request paths a deployment actually sees — cache hit,
greedy miss (one argmax decode + one simulation) and refined miss
(greedy + ``budget`` sampled candidates through ``evaluate_batch``) —
so the serving docs' latency claims stay honest. Run with::

    pytest benchmarks/bench_serve.py --benchmark-only
"""

import pytest

from repro.config import fast_profile
from repro.core import save_agent
from repro.core.search import build_agent
from repro.graph import graph_to_dict
from repro.serve import (
    PlacementRequest,
    PlacementService,
    PolicyRegistry,
    ServeConfig,
)
from repro.sim import ClusterSpec
from repro.workloads import build_vgg16

CLUSTER = ClusterSpec.default()


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    ckpt_dir = tmp_path_factory.mktemp("serve-bench")
    graph = build_vgg16(scale=0.25, batch_size=4)
    cfg = fast_profile(seed=0)
    agent, _ = build_agent("mars_no_pretrain", graph, CLUSTER, cfg, None)
    save_agent(str(ckpt_dir / "mars__vgg"), agent, "mars", workload=graph.name, config=cfg)
    svc = PlacementService(PolicyRegistry(str(ckpt_dir)), config=ServeConfig())
    # Warm the agent/env caches so the benchmarks time steady state.
    svc.handle(PlacementRequest(graph=graph_to_dict(graph)))
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def graph_doc():
    return graph_to_dict(build_vgg16(scale=0.25, batch_size=4))


def test_serve_cache_hit(benchmark, service, graph_doc):
    """The steady-state path for repeated graphs: a dictionary lookup."""
    response = benchmark(
        lambda: service.handle(PlacementRequest(graph=graph_doc))
    )
    assert response.cache == "hit"


def test_serve_greedy_miss(benchmark, service, graph_doc):
    """Uncached greedy request: fingerprint + decode + one simulation."""
    response = benchmark(
        lambda: service.handle(PlacementRequest(graph=graph_doc, use_cache=False))
    )
    assert response.cache == "miss"
    assert response.candidates_evaluated == 1


def test_serve_refined_miss(benchmark, service, graph_doc):
    """Uncached request with an 8-candidate refinement budget."""
    response = benchmark(
        lambda: service.handle(
            PlacementRequest(graph=graph_doc, budget=8, use_cache=False)
        )
    )
    assert response.candidates_evaluated == 9


def test_fingerprint_only(benchmark, graph_doc):
    """The hash itself, for scale context (dominates tiny cache hits)."""
    from repro.graph import graph_from_dict

    graph = graph_from_dict(graph_doc)
    fp = benchmark(graph.fingerprint)
    assert len(fp) == 64
