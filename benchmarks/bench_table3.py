"""Regenerates Table 3: generalization across workloads.

Expected shape (paper): direct training is never worse than transfer;
similar-type transfer is at least as good as different-type transfer,
with the gap largest on the hardest workload (BERT).
"""

from benchmarks.conftest import run_once
from repro.experiments.table3 import PAPER_VALUES, render_table3, run_table3


def test_table3(benchmark, ctx):
    results = run_once(benchmark, lambda: run_table3(ctx))
    print()
    print(render_table3(results))
    print("\nPaper values for comparison:", PAPER_VALUES)

    for wl, row in results.items():
        direct = row["Direct training"]
        similar = row["Generalized from similar type"]
        different = row["Generalized from different type"]
        import numpy as np

        assert np.isfinite(direct) and np.isfinite(similar) and np.isfinite(different)
        # Direct training wins (25% slack: 100 fine-tuning samples are few
        # and the fast profile's searches are noisy).
        assert direct <= similar * 1.25, (wl, row)
        assert direct <= different * 1.25, (wl, row)
