"""RL vs classical search under an equal measurement budget.

Compares Mars against simulated annealing and random search, all given the
same number of environment evaluations on the scaled GNMT workload. The
paper's claim that learned placers outperform classical combinatorial
search is exercised here with the fairest possible non-learned
competitors (they consume the identical reward signal).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.config import fast_profile
from repro.core import AnnealingConfig, anneal_placement, optimize_placement
from repro.experiments.common import format_table
from repro.sim import ClusterSpec, MeasurementProtocol, PlacementEnv
from repro.utils.rng import new_rng
from repro.workloads import build_gnmt

CLUSTER = ClusterSpec.default(gpu_memory_gb=3.0)
PROTOCOL = MeasurementProtocol(bad_step_threshold=20.0)
BUDGET = 300  # environment evaluations for every method


def random_search(env: PlacementEnv, budget: int, seed: int = 0) -> float:
    rng = new_rng(seed)
    best = float("inf")
    for _ in range(budget):
        res = env.evaluate(rng.integers(0, env.num_devices, env.num_ops))
        if res.ok:
            best = min(best, res.per_step_time)
    return best


def test_search_baselines(benchmark):
    graph = build_gnmt(scale=0.25)

    def run():
        rows = {}
        env = PlacementEnv(graph, CLUSTER, protocol=PROTOCOL)
        rows["random search"] = random_search(env, BUDGET, seed=0)

        env = PlacementEnv(graph, CLUSTER, protocol=PROTOCOL)
        sa = anneal_placement(env, AnnealingConfig(evaluations=BUDGET, seed=0))
        rows["simulated annealing"] = sa.best_runtime

        cfg = fast_profile(seed=0, iterations=BUDGET // 10)
        res = optimize_placement(graph, CLUSTER, "mars", cfg, protocol=PROTOCOL)
        rows["Mars (RL)"] = res.history.best_runtime
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["method", f"best step time (s) @ {BUDGET} evaluations"],
        [[k, f"{v:.4f}"] for k, v in rows.items()],
        title="Search baselines under equal measurement budget",
    ))
    assert all(np.isfinite(v) for v in rows.values())
    # At this tiny budget random search is a legitimately strong baseline
    # (learning has barely begun); RL must at least stay in its ballpark.
    assert rows["Mars (RL)"] <= rows["random search"] * 1.3
