"""Shared fixtures for the benchmark suite.

The experiment benches (one per table/figure of the paper) are *end-to-end
reproductions*: each trains RL agents against the simulated machine and
prints the regenerated table. They run exactly once per session
(``benchmark.pedantic(rounds=1)``) and share agent-training runs through an
on-disk cache, exactly like the paper reuses the same runs across Table 2,
Fig. 7 and Fig. 8.

Delete ``benchmarks/.mars_cache`` to retrain from scratch.

Uncached agent runs additionally write telemetry run directories (JSONL
event logs + manifests, see ``docs/observability.md``) under
``benchmarks/.mars_cache/runs/``; inspect one with
``python -m repro.telemetry.report <run_dir>``.
"""

from __future__ import annotations

import os

import pytest

from repro.config import fast_profile
from repro.experiments.common import ExperimentContext

CACHE_DIR = os.path.join(os.path.dirname(__file__), ".mars_cache")


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(
        config=fast_profile(),
        cache_dir=CACHE_DIR,
        telemetry_dir=os.path.join(CACHE_DIR, "runs"),
    )


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
