"""Ablation benches for the design choices called out in DESIGN.md.

Each ablation trains small agents on a scaled workload and prints a
comparison table; they answer "did this design choice matter?" rather
than reproduce a specific paper artifact.

* encoder kind (GCN vs GraphSAGE vs raw features)
* DGI pre-training budget
* placer segment size
* reward transform (-sqrt r vs -r vs -log r)
* RL algorithm (PPO vs REINFORCE)
"""

from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.config import fast_profile
from repro.core import build_mars_agent, optimize_placement
from repro.experiments.common import format_table
from repro.rl.trainer import JointTrainer, SearchHistory
from repro.sim import ClusterSpec, MeasurementProtocol, PlacementEnv
from repro.workloads import build_gnmt

CLUSTER = ClusterSpec.default(gpu_memory_gb=3.0)
PROTOCOL = MeasurementProtocol(bad_step_threshold=20.0)
ITERATIONS = 20


@pytest.fixture(scope="module")
def workload():
    return build_gnmt(scale=0.25)


def _train(graph, config, agent_kind="mars"):
    res = optimize_placement(graph, CLUSTER, agent_kind, config, protocol=PROTOCOL)
    return res.history.best_runtime


def test_ablation_encoder(benchmark, workload):
    """GCN vs GraphSAGE vs identity encoder, same placer and budget."""

    def run():
        rows = {}
        for kind in ("gcn", "sage", "identity"):
            cfg = fast_profile(seed=0, iterations=ITERATIONS)
            cfg.encoder.kind = kind
            cfg.pretrain.enabled = kind == "gcn"
            rows[kind] = _train(workload, cfg, "mars" if kind == "gcn" else "mars_no_pretrain")
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(["encoder", "best step time (s)"],
                       [[k, f"{v:.4f}"] for k, v in rows.items()],
                       title="Ablation: encoder choice"))
    assert all(np.isfinite(v) for v in rows.values())


def test_ablation_pretrain_budget(benchmark, workload):
    """0 / 50 / 300 DGI iterations before joint training."""

    def run():
        rows = {}
        for iters in (0, 50, 300):
            cfg = fast_profile(seed=0, iterations=ITERATIONS)
            cfg.pretrain.iterations = max(iters, 1)
            cfg.pretrain.enabled = iters > 0
            rows[iters] = _train(workload, cfg, "mars" if iters else "mars_no_pretrain")
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(["DGI iterations", "best step time (s)"],
                       [[str(k), f"{v:.4f}"] for k, v in rows.items()],
                       title="Ablation: pre-training budget"))
    assert all(np.isfinite(v) for v in rows.values())


def test_ablation_segment_size(benchmark, workload):
    """Segment length of the segment-level seq2seq placer."""

    def run():
        rows = {}
        for segment in (8, 32, 128):
            cfg = fast_profile(seed=0, iterations=ITERATIONS)
            cfg.placer.segment_size = segment
            rows[segment] = _train(workload, cfg, "mars_no_pretrain")
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(["segment size", "best step time (s)"],
                       [[str(k), f"{v:.4f}"] for k, v in rows.items()],
                       title="Ablation: placer segment size"))
    assert all(np.isfinite(v) for v in rows.values())


def test_ablation_reward_transform(benchmark, workload):
    """The paper's -sqrt(r) vs plain -r and -log(r)."""

    def run():
        rows = {}
        for transform in ("neg_sqrt", "neg", "neg_log"):
            cfg = fast_profile(seed=0, iterations=ITERATIONS)
            cfg.trainer.reward.transform = transform
            rows[transform] = _train(workload, cfg, "mars_no_pretrain")
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(["reward transform", "best step time (s)"],
                       [[k, f"{v:.4f}"] for k, v in rows.items()],
                       title="Ablation: reward shaping"))
    assert all(np.isfinite(v) for v in rows.values())


def test_ablation_rl_algorithm(benchmark, workload):
    """PPO (paper) vs REINFORCE (Mirhoseini et al. 2017)."""

    def run():
        rows = {}
        for algo in ("ppo", "reinforce"):
            cfg = fast_profile(seed=0, iterations=ITERATIONS)
            cfg.trainer.algorithm = algo
            env = PlacementEnv(workload, CLUSTER, protocol=PROTOCOL)
            agent = build_mars_agent(workload, CLUSTER, cfg)
            pre_clock = agent.pretrain(cfg.pretrain, seed=0)
            history = JointTrainer(agent, env, cfg.trainer).train(
                SearchHistory(pretrain_clock=pre_clock)
            )
            rows[algo] = history.best_runtime
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(["algorithm", "best step time (s)"],
                       [[k, f"{v:.4f}"] for k, v in rows.items()],
                       title="Ablation: RL algorithm"))
    assert all(np.isfinite(v) for v in rows.values())
