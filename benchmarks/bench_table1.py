"""Regenerates Table 1: placer-design study.

Expected shape (paper): the plain seq2seq placer is the worst everywhere
and degrades with sequence length; segment-level seq2seq matches
Transformer-XL on the smaller models and beats it on BERT.
"""

from benchmarks.conftest import run_once
from repro.experiments.table1 import PAPER_VALUES, render_table1, run_table1


def test_table1(benchmark, ctx):
    results = run_once(benchmark, lambda: run_table1(ctx))
    print()
    print(render_table1(results))
    print("\nPaper values for comparison:", PAPER_VALUES)

    for wl, values in results.items():
        assert all(v == v for v in values.values()), (wl, values)  # no OOM
        segment = values["Seq2seq (segment)"]
        best_rival = min(values["Seq2seq"], values["Trf-XL"])
        # At the fast profile's budgets and graph sizes the three designs
        # land within tens of percent of each other rather than showing the
        # paper's clear segment-level win (see EXPERIMENTS.md); the bench
        # guards against catastrophic regressions of the segment design.
        assert segment <= best_rival * 1.4, (wl, values)
