"""Benchmark: distributed actor–learner search vs single-process search.

On a real testbed the expensive part of one policy iteration is not the
learner's update — it is *measuring* the sampled placements on hardware
(the paper's per-placement measurement latency: graph rebuild, variable
init, warm-up and timed steps). ``repro.distrib`` exists to overlap that
latency across rollout-worker processes.

The simulated :class:`MeasurementProtocol` returns instantly, so this
benchmark swaps in :class:`LatencyProtocol` — identical numbers, plus a
real ``time.sleep`` per measurement emulating the testbed's per-placement
latency. The learner and the workers run the *same* protocol; the only
difference between the timed modes is who waits:

* ``workers=0`` — the single-process search measures every placement
  inline, paying the full latency serially;
* ``workers=N`` — N rollout workers measure concurrently and the learner
  only consumes finished batches.

Both modes run the same iteration/sample budget; the reported number is
search throughput (samples consumed per second of search wall time).
Run it directly::

    PYTHONPATH=src python benchmarks/bench_distributed.py
    PYTHONPATH=src python benchmarks/bench_distributed.py --workers 4 --latency 0.05
    PYTHONPATH=src python benchmarks/bench_distributed.py --smoke  # make bench-smoke

``--smoke`` runs a 2-worker search on VGG-16 with a tiny latency and
asserts completion + clean shutdown only (no timing assertions) — it is
wired into ``make test`` to keep the distributed path exercised.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, replace

from repro.config import fast_profile
from repro.core.search import optimize_placement
from repro.sim.cluster import ClusterSpec
from repro.sim.measurement import MeasurementProtocol
from repro.telemetry import Telemetry
from repro.workloads import get_workload

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_distributed.json"
)


@dataclass(frozen=True)
class LatencyProtocol(MeasurementProtocol):
    """The simulated protocol plus a real per-measurement sleep.

    Module-level (not a closure) so worker processes can rebuild it, and
    the sleep happens inside :meth:`measure` — exactly where a testbed
    blocks — so cache hits in the environment skip it, just like a real
    measurement cache would.
    """

    real_latency_s: float = 1.0

    def measure(self, makespan, valid, placement_key):
        time.sleep(self.real_latency_s)
        return super().measure(makespan, valid, placement_key)


def run_search(workload: str, workers: int, iterations: int, latency: float, seed: int):
    """One full search; returns ``(wall_s, samples, history, telemetry)``."""
    cfg = fast_profile(seed=seed, iterations=iterations)
    # queue_capacity=1: with emulated measurement latency the workers
    # would otherwise fill deep queues with rollouts the budgeted run
    # never consumes — wasted CPU that a real deployment would also cap.
    # max_staleness=2*workers: the default (4) is tuned for small fleets;
    # at 8 workers with broadcast-per-update, steady-state staleness is
    # ≈ workers/2 versions, and dropping those batches would re-measure
    # every rollout instead of overlapping it.
    cfg = replace(
        cfg,
        distrib=replace(
            cfg.distrib,
            workers=workers,
            queue_capacity=1,
            max_staleness=max(4, 2 * workers),
        ),
    )
    tel = Telemetry(name=f"bench-distrib-{workers}")
    graph = get_workload(workload)
    protocol = LatencyProtocol(real_latency_s=latency)
    start = time.perf_counter()
    result = optimize_placement(
        graph, ClusterSpec.default(), "mars_no_pretrain", cfg,
        protocol=protocol, telemetry=tel,
    )
    wall = time.perf_counter() - start
    history = result.history
    if len(history.records) != iterations or history.halt_reason is not None:
        raise AssertionError(
            f"workers={workers}: ran {len(history.records)}/{iterations} "
            f"iterations (halt={history.halt_reason!r})"
        )
    leaked = multiprocessing.active_children()
    if leaked:
        raise AssertionError(
            f"workers={workers}: orphaned processes {[c.name for c in leaked]}"
        )
    return wall, history.records[-1].samples_so_far, history, tel


def run_benchmark(args) -> int:
    print(
        f"workload={args.workload} iterations={args.iterations} "
        f"samples/iter=10 latency={args.latency * 1000:.0f}ms "
        f"workers={args.workers}"
    )
    rows = []
    for workers in (0, args.workers):
        wall, samples, history, _ = run_search(
            args.workload, workers, args.iterations, args.latency, args.seed
        )
        rows.append((workers, wall, samples, samples / wall, history.best_runtime))
    base_tp = rows[0][3]
    print(f"{'workers':>8} {'wall_s':>9} {'samples':>8} {'samples/s':>10} {'speedup':>8}")
    for workers, wall, samples, tp, _best in rows:
        print(f"{workers:>8} {wall:>9.2f} {samples:>8} {tp:>10.2f} {tp / base_tp:>7.2f}x")
    speedup = rows[1][3] / base_tp
    doc = {
        "benchmark": "distributed",
        "workload": args.workload,
        "iterations": int(args.iterations),
        "measurement_latency_s": float(args.latency),
        "modes": {
            f"workers={workers}": {
                "wall_s": float(wall),
                "samples": int(samples),
                "samples_per_s": float(tp),
                "best_runtime": float(best),
            }
            for workers, wall, samples, tp, best in rows
        },
        "speedup_vs_single_process": float(speedup),
    }
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.json}")
    if speedup < args.min_speedup:
        print(
            f"FAIL: {speedup:.2f}x search throughput at {args.workers} workers "
            f"(target >= {args.min_speedup:.1f}x)",
            file=sys.stderr,
        )
        return 1
    print(f"search throughput {speedup:.2f}x at {args.workers} workers: OK")
    return 0


def run_smoke() -> int:
    """2 workers, tiny latency: proves the distributed path end to end."""
    wall, samples, history, tel = run_search(
        "vgg16", workers=2, iterations=3, latency=0.005, seed=0
    )
    snap = tel.metrics.snapshot()
    batches = snap["counters"].get("distrib.batches", {}).get("value", 0)
    if batches != 3:
        print(f"bench-smoke FAILED: distrib.batches == {batches}", file=sys.stderr)
        return 1
    print(
        f"bench-smoke OK: 2 workers x 3 iterations on vgg16 in {wall:.1f}s, "
        f"{samples} samples, clean shutdown"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workload", choices=["inception_v3", "vgg16", "bert", "gnmt4"],
        default="inception_v3",
    )
    parser.add_argument("--iterations", type=int, default=8, help="policy iterations")
    parser.add_argument("--workers", type=int, default=8, help="rollout workers")
    parser.add_argument(
        "--latency", type=float, default=1.0,
        help="emulated per-measurement latency in seconds",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="fail below this throughput ratio at --workers",
    )
    parser.add_argument("--json", default=JSON_PATH, help="output path for the JSON record")
    parser.add_argument(
        "--smoke", action="store_true", help="2 workers, 3 iterations, no timings"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    return run_benchmark(args)


if __name__ == "__main__":
    sys.exit(main())
